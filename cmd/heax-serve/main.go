// heax-serve is the multi-tenant plan-serving daemon: the host process
// of the paper's system view (Section 5.2), exposing the compile-once /
// run-many Plan pipeline over a framed TCP protocol. Tenants register
// serialized evaluation key sets, ship circuit DAGs that are compiled
// into an LRU-bounded plan cache, and stream ciphertext batches through
// weighted-fair per-tenant admission queues that share the evaluator
// worker pool across tenants, shedding load and unmeetable deadlines
// up front instead of queuing them.
//
// Usage:
//
//	heax-serve [-addr :7609] [-params B] [-cache 64] [-admission 0]
//	           [-max-frame-mb 1024] [-plan-workers 0] [-drain 30s]
//	           [-tenant-weights alice=3,bob=1] [-tenant-queue 64]
//	           [-tenant-inflight 0] [-dedup 256]
//	           [-state-dir DIR] [-fsync always] [-max-tenant-bytes 0]
//	           [-metrics-addr :9090] [-trace-steps] [-slow-run 0]
//	           [-version]
//
// -params picks the paper's Table 2 parameter set (A, B or C) — one
// set per daemon, like one synthesized accelerator. -admission 0 means
// GOMAXPROCS concurrent input sets; -plan-workers 0 leaves each plan's
// row-level fan-out at the evaluator default. See examples/client for
// the matching client flow.
//
// -state-dir makes tenant registrations durable: every register and
// unregister is appended to a checksummed write-ahead log (snapshotted
// and compacted automatically) before it is acknowledged, and on
// startup the daemon replays the log so tenants resume without
// re-uploading evaluation keys — even after a kill -9. -fsync picks
// the durability/latency trade-off (always: fsync every record, a
// crash loses nothing acknowledged; never: leave flushing to the OS).
// -max-tenant-bytes caps each tenant's server memory (key bytes plus
// the working set of queued and executing runs); excess work is shed
// with a typed resource-exhausted error before allocation.
//
// -metrics-addr starts a second HTTP listener with the observability
// surface: /metrics (Prometheus text exposition — per-tenant admission
// counters, plan-cache hit rate, per-plan and per-step-kind latency
// histograms), /healthz (200 while serving, 503 while draining), and
// /debug/pprof. -trace-steps (default on) times every executed plan
// step by kind; -slow-run logs any Run slower than the given threshold
// with tenant, plan id and duration.
//
// On SIGTERM the daemon drains gracefully: listeners close, in-flight
// runs finish and flush their responses, new work is refused with the
// typed draining error, and the process exits 0 once idle (1 if the
// -drain window expires first). SIGINT stops hard immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"heax"
	"heax/serve"
	"heax/serve/durable"
)

// buildInfo reports the module version and VCS revision baked into the
// binary by the Go toolchain (no build-time ldflags needed).
func buildInfo() (mod, rev, dirty string) {
	mod, rev = "(devel)", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			mod = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
	}
	return mod, rev, dirty
}

func version() string {
	mod, rev, dirty := buildInfo()
	return fmt.Sprintf("heax-serve %s (revision %s%s, %s)", mod, rev, dirty, runtime.Version())
}

// serveMetricsHTTP mounts the observability surface on its own
// listener: /metrics (Prometheus exposition), /healthz (503 while
// draining, so load balancers stop routing before the listener dies),
// and /debug/pprof. Returns the bound listener so callers can log the
// resolved address.
func serveMetricsHTTP(addr string, srv *serve.Server) (net.Listener, error) {
	reg := srv.MetricsRegistry()
	mod, rev, dirty := buildInfo()
	reg.NewGaugeVec("heax_build_info",
		"Build metadata; the value is always 1.", "version", "revision", "goversion").
		With(mod, rev+dirty, runtime.Version()).Set(1)
	start := time.Now()
	reg.NewGaugeFunc("heax_uptime_seconds",
		"Seconds since the daemon started.",
		func() float64 { return time.Since(start).Seconds() })

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if srv.Stats().Draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil && !isClosedErr(err) {
			log.Printf("metrics listener: %v", err)
		}
	}()
	return ln, nil
}

func isClosedErr(err error) bool {
	return strings.Contains(err.Error(), "use of closed network connection")
}

// parseTenantWeights parses "name=weight,name=weight" into per-tenant
// admission policies.
func parseTenantWeights(s string, queue, inflight int) (map[string]serve.TenantPolicy, error) {
	out := make(map[string]serve.TenantPolicy)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("malformed tenant weight %q (want name=weight)", part)
		}
		weight, err := strconv.Atoi(w)
		if err != nil || weight < 1 {
			return nil, fmt.Errorf("tenant %q: weight %q must be a positive integer", name, w)
		}
		out[name] = serve.TenantPolicy{Weight: weight, MaxQueued: queue, MaxInFlight: inflight}
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("heax-serve: ")
	addr := flag.String("addr", ":7609", "TCP listen address")
	paramSet := flag.String("params", "B", "parameter set: A, B or C (Table 2)")
	cache := flag.Int("cache", 64, "compiled-plan cache capacity (LRU, all tenants)")
	admission := flag.Int("admission", 0, "concurrent input sets across all tenants (0 = GOMAXPROCS)")
	maxFrameMB := flag.Int("max-frame-mb", serve.DefaultMaxFrame>>20, "maximum protocol frame size in MiB")
	planWorkers := flag.Int("plan-workers", 0, "row-level worker cap per compiled plan (0 = evaluator default)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain window on SIGTERM before a hard stop")
	tenantWeights := flag.String("tenant-weights", "", "per-tenant admission weights, e.g. alice=3,bob=1 (others get weight 1)")
	tenantQueue := flag.Int("tenant-queue", serve.DefaultTenantQueue, "queued input sets allowed per tenant before shedding")
	tenantInflight := flag.Int("tenant-inflight", 0, "concurrent input sets per tenant (0 = no per-tenant cap)")
	dedup := flag.Int("dedup", 256, "retry-dedup cache capacity (completed responses kept per request id)")
	stateDir := flag.String("state-dir", "", "directory for durable tenant state (empty = in-memory only; registrations do not survive restart)")
	fsyncMode := flag.String("fsync", "always", "tenant-log fsync policy: always (crash-safe per record) or never (leave flushing to the OS)")
	maxTenantBytes := flag.Int64("max-tenant-bytes", 0, "per-tenant memory budget in bytes: keys + live run working set (0 = unlimited)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for /metrics, /healthz and /debug/pprof (empty = disabled)")
	traceSteps := flag.Bool("trace-steps", true, "record per-step-kind execution latency on every compiled plan")
	slowRun := flag.Duration("slow-run", 0, "log any Run request slower than this threshold (0 = disabled)")
	showVersion := flag.Bool("version", false, "print version and revision, then exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version())
		return
	}

	var spec heax.ParamSpec
	switch strings.ToUpper(*paramSet) {
	case "A":
		spec = heax.SetA
	case "B":
		spec = heax.SetB
	case "C":
		spec = heax.SetC
	default:
		log.Fatalf("unknown parameter set %q (want A, B or C)", *paramSet)
	}
	params, err := heax.NewParams(spec)
	if err != nil {
		log.Fatal(err)
	}

	opts := []serve.Option{
		serve.WithCacheCapacity(*cache),
		serve.WithMaxFrameBytes(*maxFrameMB << 20),
		serve.WithDefaultTenantPolicy(serve.TenantPolicy{
			Weight:      1,
			MaxQueued:   *tenantQueue,
			MaxInFlight: *tenantInflight,
			MaxBytes:    *maxTenantBytes,
		}),
		serve.WithDedupCapacity(*dedup),
		serve.WithStepTracing(*traceSteps),
	}
	if *slowRun > 0 {
		opts = append(opts, serve.WithSlowRunLog(*slowRun, log.Printf))
	}

	var store *durable.Store
	if *stateDir != "" {
		var fsync durable.FsyncPolicy
		switch *fsyncMode {
		case "always":
			fsync = durable.FsyncAlways
		case "never":
			fsync = durable.FsyncNever
		default:
			log.Fatalf("unknown -fsync mode %q (want always or never)", *fsyncMode)
		}
		store, err = durable.Open(*stateDir, durable.Options{Fsync: fsync})
		if err != nil {
			log.Fatalf("opening durable state in %s: %v", *stateDir, err)
		}
		if n := store.DroppedTailBytes(); n > 0 {
			log.Printf("recovered from a torn tenant log: dropped %d unsynced trailing bytes", n)
		}
		opts = append(opts, serve.WithTenantLog(store))
	}
	window := *admission
	if window <= 0 {
		window = runtime.GOMAXPROCS(0)
	}
	opts = append(opts, serve.WithAdmissionWindow(window))
	if *planWorkers > 0 {
		opts = append(opts, serve.WithCompileOptions(heax.WithPlanWorkers(*planWorkers)))
	}
	weights, err := parseTenantWeights(*tenantWeights, *tenantQueue, *tenantInflight)
	if err != nil {
		log.Fatal(err)
	}
	for name, pol := range weights {
		opts = append(opts, serve.WithTenantPolicy(name, pol))
	}

	srv, err := serve.NewServer(params, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if store != nil {
		tenants := store.Tenants()
		for _, t := range tenants {
			if err := srv.RestoreTenant(t.Name, t.Keys); err != nil {
				log.Fatalf("restoring tenant %q from %s: %v", t.Name, *stateDir, err)
			}
		}
		if len(tenants) > 0 {
			log.Printf("restored %d tenant(s) from %s (no key re-upload needed)", len(tenants), *stateDir)
		}
	}
	var mln net.Listener
	if *metricsAddr != "" {
		mln, err = serveMetricsHTTP(*metricsAddr, srv)
		if err != nil {
			log.Fatalf("metrics listener on %s: %v", *metricsAddr, err)
		}
		log.Printf("metrics on http://%s/metrics (healthz, pprof)", mln.Addr())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s", version())
	log.Printf("%s on %s (LogN=%d, k=%d primes, %d slots); cache=%d plans, admission=%d, drain=%v",
		spec.Name, ln.Addr(), params.LogN, params.K(), params.Slots(), *cache, window, *drain)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	exited := make(chan int, 1)
	go func() {
		s := <-sig
		st := srv.Stats()
		if s == syscall.SIGTERM {
			log.Printf("draining (%d tenants, %d cached plans, %d completed / %d shed runs, up to %v)",
				st.Tenants, st.CachedPlans, st.CompletedRuns, st.ShedRuns, *drain)
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				log.Printf("drain window expired; runs were cut: %v", err)
				exited <- 1
				return
			}
			log.Printf("drained clean")
			exited <- 0
			return
		}
		log.Printf("interrupted; hard stop (%d tenants, %d cached plans, %d cancelled runs)",
			st.Tenants, st.CachedPlans, st.CanceledRuns)
		srv.Close()
		exited <- 0
	}()

	if err := srv.Serve(ln); err != serve.ErrServerClosed {
		log.Fatal(err)
	}
	code := <-exited
	// The metrics listener outlives the drain on purpose (healthz keeps
	// answering 503 while runs finish); close it only now.
	if mln != nil {
		mln.Close()
	}
	// os.Exit skips defers; close the store explicitly so the final WAL
	// records hit disk even under -fsync never.
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("closing durable state: %v", err)
		}
	}
	os.Exit(code)
}
