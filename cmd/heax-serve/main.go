// heax-serve is the multi-tenant plan-serving daemon: the host process
// of the paper's system view (Section 5.2), exposing the compile-once /
// run-many Plan pipeline over a framed TCP protocol. Tenants register
// serialized evaluation key sets, ship circuit DAGs that are compiled
// into an LRU-bounded plan cache, and stream ciphertext batches through
// a global admission window that shares the evaluator worker pool
// fairly across tenants.
//
// Usage:
//
//	heax-serve [-addr :7609] [-params B] [-cache 64] [-admission 0]
//	           [-max-frame-mb 1024] [-plan-workers 0]
//
// -params picks the paper's Table 2 parameter set (A, B or C) — one
// set per daemon, like one synthesized accelerator. -admission 0 means
// GOMAXPROCS concurrent input sets; -plan-workers 0 leaves each plan's
// row-level fan-out at the evaluator default. See examples/client for
// the matching client flow.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"heax"
	"heax/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heax-serve: ")
	addr := flag.String("addr", ":7609", "TCP listen address")
	paramSet := flag.String("params", "B", "parameter set: A, B or C (Table 2)")
	cache := flag.Int("cache", 64, "compiled-plan cache capacity (LRU, all tenants)")
	admission := flag.Int("admission", 0, "concurrent input sets across all tenants (0 = GOMAXPROCS)")
	maxFrameMB := flag.Int("max-frame-mb", serve.DefaultMaxFrame>>20, "maximum protocol frame size in MiB")
	planWorkers := flag.Int("plan-workers", 0, "row-level worker cap per compiled plan (0 = evaluator default)")
	flag.Parse()

	var spec heax.ParamSpec
	switch strings.ToUpper(*paramSet) {
	case "A":
		spec = heax.SetA
	case "B":
		spec = heax.SetB
	case "C":
		spec = heax.SetC
	default:
		log.Fatalf("unknown parameter set %q (want A, B or C)", *paramSet)
	}
	params, err := heax.NewParams(spec)
	if err != nil {
		log.Fatal(err)
	}

	opts := []serve.Option{
		serve.WithCacheCapacity(*cache),
		serve.WithMaxFrameBytes(*maxFrameMB << 20),
	}
	window := *admission
	if window <= 0 {
		window = runtime.GOMAXPROCS(0)
	}
	opts = append(opts, serve.WithAdmissionWindow(window))
	if *planWorkers > 0 {
		opts = append(opts, serve.WithCompileOptions(heax.WithPlanWorkers(*planWorkers)))
	}

	srv, err := serve.NewServer(params, opts...)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s on %s (LogN=%d, k=%d primes, %d slots); cache=%d plans, admission=%d",
		spec.Name, ln.Addr(), params.LogN, params.K(), params.Slots(), *cache, window)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		st := srv.Stats()
		log.Printf("shutting down (%d tenants, %d cached plans, %d cancelled runs)",
			st.Tenants, st.CachedPlans, st.CanceledRuns)
		srv.Close()
	}()

	if err := srv.Serve(ln); err != serve.ErrServerClosed {
		log.Fatal(err)
	}
}
