// heax-bench regenerates every table and figure of the HEAX evaluation
// (Section 6) from this reproduction — resource models, the architecture
// generator, the cycle-level pipeline simulator, and the Go CKKS baseline
// measured on the local machine — each next to the paper's reported
// numbers. It is a thin driver over the public heax/bench harness.
//
// Usage:
//
//	heax-bench [-quick] [-nocpu] [-sweep-workers]
//
// -quick shortens the CPU measurement windows; -nocpu skips the CPU
// baseline entirely (the model/paper columns still print);
// -sweep-workers additionally sweeps the ring worker count (1, 2, 4,
// ..., NumCPU) and prints a KeySwitch/MulRelin scaling table for the
// pipelined tile scheduler.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"heax/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heax-bench: ")
	quick := flag.Bool("quick", false, "shorter CPU measurement windows")
	nocpu := flag.Bool("nocpu", false, "skip CPU baseline measurement")
	sweep := flag.Bool("sweep-workers", false, "sweep worker counts (1,2,4,...,NumCPU) and print KeySwitch/MulRelin scaling")
	flag.Parse()

	if *sweep {
		fmt.Fprintln(os.Stderr, "sweeping worker counts (Set-A, Set-B, Set-C)...")
		tb, err := bench.WorkerSweepTable(*quick)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tb.Render())
	}

	cpu := bench.EmptyCPUMeasurements()
	if !*nocpu {
		fmt.Fprintln(os.Stderr, "measuring CPU baseline (Set-A, Set-B, Set-C)...")
		m, err := bench.MeasureCPU(*quick)
		if err != nil {
			log.Fatal(err)
		}
		cpu = m
	}
	out, err := bench.AllTables(cpu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
