// heax-arch explores the HEAX architecture generator: given a board and
// an HE parameter shape it derives the KeySwitch architecture (Table 5),
// its resource footprint (Table 6), memory plan (Section 5.1) and
// throughput (Tables 7-8) — the paper's "instantiated at different scales
// with no manual tuning" workflow — through the public heax/arch surface.
//
// Usage:
//
//	heax-arch [-board Stratix10] [-logn 13] [-k 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"heax/arch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heax-arch: ")
	boardName := flag.String("board", "Stratix10", "FPGA board: Arria10 or Stratix10")
	logn := flag.Int("logn", 13, "log2 of the ring degree")
	k := flag.Int("k", 4, "number of RNS components of the ciphertext modulus")
	flag.Parse()

	board, err := arch.BoardByName(*boardName)
	if err != nil {
		log.Fatal(err)
	}
	set := arch.ParamSet{Name: fmt.Sprintf("n=2^%d,k=%d", *logn, *k), LogN: *logn, K: *k}
	a, err := arch.GenerateArch(board, set)
	if err != nil {
		log.Fatal(err)
	}
	design := arch.NewDesign(board, set, a)

	fmt.Printf("board        %s (%s)\n", board.Name, board.Chip)
	fmt.Printf("parameters   n = 2^%d, k = %d\n", *logn, *k)
	fmt.Printf("architecture %s\n", a)
	fmt.Printf("buffers      f1 = %d, f2 = %d\n", a.F1(), a.F2(set.LogN))
	fmt.Printf("resources    %s\n", design.Resources().Utilization(board))

	inv := design.MemoryInventory()
	loc := "on-chip BRAM"
	if inv.KeysOnDRAM {
		loc = "DRAM (streamed)"
	}
	fmt.Printf("key storage  %s (ksk = %.1f Mb)\n", loc, float64(arch.KskBits(set))/1e6)
	if inv.KeysOnDRAM {
		fmt.Printf("dram check   %s\n", arch.DRAMStreaming(design))
	}

	perf := arch.Perf{Design: design}
	fmt.Printf("throughput   NTT %.0f/s  Dyadic %.0f/s  KeySwitch %.0f/s  MULT+ReLin %.0f/s\n",
		perf.NTTOps(), perf.DyadicOps(), perf.KeySwitchOps(), perf.MulRelinOps())

	rep := arch.SimulateKeySwitchPipeline(arch.PipelineConfig{Arch: a, Set: set}, 64, false)
	fmt.Printf("simulated    interval %.0f cycles/op (closed form %d), INTT0 utilization %.0f%%\n",
		rep.Interval, a.KeySwitchCycles(set), 100*rep.Utilization["INTT0"])
}
