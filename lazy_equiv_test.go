// Lazy-vs-strict equivalence across the paper's parameter sets: the
// acceptance gate for the lazy-reduction NTT engine. For every Table 2
// set (w=54-style moduli below 2^52, which also take the AVX-512 IFMA
// path where the CPU has it) and an additional 62-bit w=64 basis, the
// production Forward/Inverse must match the strict oracles bit for bit
// on random inputs, and round-trip composition must be the identity.
package heax_test

import (
	"math/rand"
	"testing"

	"heax/internal/ckks"
	"heax/internal/ntt"
	"heax/internal/primes"
)

func TestLazyTransformsMatchStrict_StandardSets(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, spec := range ckks.StandardSets {
		params, err := ckks.NewParams(spec)
		if err != nil {
			t.Fatal(err)
		}
		for row, tb := range params.RingQP.Tables {
			p := params.RingQP.Basis.Primes[row]
			a := make([]uint64, params.N)
			for j := range a {
				a[j] = rng.Uint64() % p
			}
			fwdWant := append([]uint64(nil), a...)
			tb.ForwardStrict(fwdWant)
			fwdGot := append([]uint64(nil), a...)
			tb.Forward(fwdGot)
			for j := range fwdGot {
				if fwdGot[j] != fwdWant[j] {
					t.Fatalf("%s prime %d: lazy NTT diverges from strict at %d", spec.Name, p, j)
				}
			}
			invWant := append([]uint64(nil), fwdWant...)
			tb.InverseStrict(invWant)
			invGot := append([]uint64(nil), fwdGot...)
			tb.Inverse(invGot)
			for j := range invGot {
				if invGot[j] != invWant[j] {
					t.Fatalf("%s prime %d: lazy INTT diverges from strict at %d", spec.Name, p, j)
				}
				if invGot[j] != a[j] {
					t.Fatalf("%s prime %d: INTT(NTT(a)) != a at %d", spec.Name, p, j)
				}
			}
		}
	}
}

func TestLazyTransformsMatchStrict_W64(t *testing.T) {
	// A full-width w=64 modulus (62 bits): beyond both the 54-bit
	// hardware word and the IFMA lane, so this pins the scalar path.
	n := 1 << 12
	ps, err := primes.NTTPrimes(62, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ntt.NewTables(ps[0], n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	a := make([]uint64, n)
	for j := range a {
		a[j] = rng.Uint64() % ps[0]
	}
	want := append([]uint64(nil), a...)
	tb.ForwardStrict(want)
	tb.InverseStrict(want)
	got := append([]uint64(nil), a...)
	tb.Forward(got)
	tb.Inverse(got)
	for j := range got {
		if got[j] != want[j] || got[j] != a[j] {
			t.Fatalf("62-bit prime: lazy/strict divergence at %d", j)
		}
	}
}
