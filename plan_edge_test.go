package heax_test

// Compile-time edge cases: identities, degenerate constants and
// pass-through outputs must either compile to correct plans or fail
// with a typed sentinel — never panic (the serving daemon feeds
// Compile with tenant-supplied DAGs).

import (
	"math"
	"strings"
	"testing"

	"heax"
)

// TestPlanRotateZeroIsIdentity: Rotate(a, 0) is eliminated — no Rotate
// step, no Galois key demanded — and the value passes through.
func TestPlanRotateZeroIsIdentity(t *testing.T) {
	k := newAPIKit(t)
	c := heax.NewCircuit()
	x := c.Input("x")
	c.Output("y", c.AddConst(c.Rotate(x, 0), 1))
	plan, err := c.Compile(k.params, &heax.EvaluationKeySet{}) // no keys at all
	if err != nil {
		t.Fatalf("Rotate by 0 must not demand keys: %v", err)
	}
	if strings.Contains(plan.Describe(), "Rotate") {
		t.Fatalf("Rotate(a, 0) must be eliminated:\n%s", plan.Describe())
	}
	in := []float64{1.5, -2}
	out, err := plan.Run(map[string]*heax.Ciphertext{"x": k.encrypt(t, in)})
	if err != nil {
		t.Fatal(err)
	}
	got := k.decodeReal(t, out["y"], len(in))
	for i, v := range in {
		if math.Abs(got[i]-(v+1)) > 1e-3 {
			t.Fatalf("slot %d: got %g, want %g", i, got[i], v+1)
		}
	}
}

// TestPlanInnerSumOneIsNoOp: InnerSum(a, 1) sums one slot — the value
// itself — and must compile to nothing extra.
func TestPlanInnerSumOneIsNoOp(t *testing.T) {
	k := newAPIKit(t)
	c := heax.NewCircuit()
	x := c.Input("x")
	c.Output("y", c.AddConst(c.InnerSum(x, 1), 0.5))
	plan, err := c.Compile(k.params, &heax.EvaluationKeySet{})
	if err != nil {
		t.Fatalf("InnerSum width 1 must not demand keys: %v", err)
	}
	if strings.Contains(plan.Describe(), "InnerSum") {
		t.Fatalf("InnerSum(a, 1) must be eliminated:\n%s", plan.Describe())
	}
	in := []float64{2, 3}
	out, err := plan.Run(map[string]*heax.Ciphertext{"x": k.encrypt(t, in)})
	if err != nil {
		t.Fatal(err)
	}
	got := k.decodeReal(t, out["y"], len(in))
	for i, v := range in {
		if math.Abs(got[i]-(v+0.5)) > 1e-3 {
			t.Fatalf("slot %d: got %g, want %g", i, got[i], v+0.5)
		}
	}
}

// TestPlanMulConstDegenerate: multiplying by 0 and by 1 must ride the
// scale ladder like any other plaintext product — compiling, running,
// and decrypting to exactly-zero / unchanged values.
func TestPlanMulConstDegenerate(t *testing.T) {
	k := newAPIKit(t)
	in := []float64{0.75, -1.25, 2}
	for _, tc := range []struct {
		name  string
		c     float64
		wants func(v float64) float64
	}{
		{"zero", 0, func(float64) float64 { return 0 }},
		{"one", 1, func(v float64) float64 { return v }},
		{"minus one", -1, func(v float64) float64 { return -v }},
	} {
		c := heax.NewCircuit()
		x := c.Input("x")
		// Feed the product into an addition with the original so the
		// compiler also has to reconcile the tiers.
		c.Output("y", c.Add(c.MulConst(x, tc.c), x))
		plan, err := c.Compile(k.params, k.evk)
		if err != nil {
			t.Fatalf("MulConst by %s: %v", tc.name, err)
		}
		out, err := plan.Run(map[string]*heax.Ciphertext{"x": k.encrypt(t, in)})
		if err != nil {
			t.Fatalf("MulConst by %s: %v", tc.name, err)
		}
		got := k.decodeReal(t, out["y"], len(in))
		for i, v := range in {
			want := tc.wants(v) + v
			if math.Abs(got[i]-want) > 1e-3 {
				t.Fatalf("MulConst by %s, slot %d: got %g, want %g", tc.name, i, got[i], want)
			}
		}
	}
}

// TestPlanPassThroughOutput: an Output that is also an Input compiles
// to a copy — the returned ciphertext carries the input's exact bits
// in caller-owned storage.
func TestPlanPassThroughOutput(t *testing.T) {
	k := newAPIKit(t)
	c := heax.NewCircuit()
	x := c.Input("x")
	c.Output("y", x)
	c.Output("z", x) // two outputs of the same node must also work
	plan, err := c.Compile(k.params, &heax.EvaluationKeySet{})
	if err != nil {
		t.Fatal(err)
	}
	ct := k.encrypt(t, []float64{1, 2, 3})
	out, err := plan.Run(map[string]*heax.Ciphertext{"x": ct})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"y", "z"} {
		got := out[name]
		if got == ct {
			t.Fatalf("output %q must not alias the caller's input", name)
		}
		if got.Scale != ct.Scale || got.Level != ct.Level || len(got.Polys) != len(ct.Polys) {
			t.Fatalf("output %q metadata differs from the input", name)
		}
		for i := range ct.Polys {
			if &got.Polys[i].Coeffs[0][0] == &ct.Polys[i].Coeffs[0][0] {
				t.Fatalf("output %q shares backing storage with the input", name)
			}
			if !got.Polys[i].Equal(ct.Polys[i]) {
				t.Fatalf("output %q is not bit-identical to the input", name)
			}
		}
	}
	if out["y"] == out["z"] {
		t.Fatal("distinct outputs must be distinct ciphertexts")
	}
}
