package heax

// Plan-vs-imperative oracle: every compiled example circuit, executed
// through the concurrent Plan executor (pooled buffers, out-of-order
// steps, workers > 1), must produce ciphertexts bit-identical to a
// sequential imperative replay of the same step list through the
// allocating evaluator calls — the executor may add concurrency, never
// numerics. Runs across the paper's Set-A/B/C parameter sets and under
// -race in CI.

import (
	"fmt"
	"math/rand"
	"testing"
)

type oracleKit struct {
	params    *Params
	evk       *EvaluationKeySet
	enc       *Encoder
	encryptor *Encryptor
	decryptor *Decryptor
}

func newOracleKit(t *testing.T, spec ParamSpec, steps []int, conjugate bool) *oracleKit {
	t.Helper()
	params, err := NewParams(spec)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(params, 7)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	return &oracleKit{
		params:    params,
		evk:       GenEvaluationKeys(kg, sk, steps, conjugate),
		enc:       NewEncoder(params),
		encryptor: NewEncryptor(params, pk, 8),
		decryptor: NewDecryptor(params, sk),
	}
}

func (k *oracleKit) encrypt(t *testing.T, vals []float64) *Ciphertext {
	t.Helper()
	pt, err := k.enc.EncodeReal(vals, k.params.MaxLevel(), k.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct, err := k.encryptor.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func ctBitEqual(a, b *Ciphertext) bool {
	if a == nil || b == nil || a.Level != b.Level || len(a.Polys) != len(b.Polys) || a.Scale != b.Scale {
		return false
	}
	for i := range a.Polys {
		if !a.Polys[i].Equal(b.Polys[i]) {
			return false
		}
	}
	return true
}

// replayPlan executes the compiled step list sequentially through the
// allocating evaluator API — the hand-written imperative sequence the
// compiler would have produced.
func replayPlan(t *testing.T, p *Plan, in map[string]*Ciphertext) map[string]*Ciphertext {
	t.Helper()
	e := p.eval
	slots := make([]*Ciphertext, p.nSlots)
	for _, pi := range p.inputs {
		slots[pi.slot] = in[pi.name]
	}
	for i, st := range p.steps {
		var err error
		a := slots[st.args[0]]
		switch st.kind {
		case stepAdd:
			slots[st.outs[0]], err = e.Add(a, slots[st.args[1]])
		case stepSub:
			slots[st.outs[0]], err = e.Sub(a, slots[st.args[1]])
		case stepMulRelin:
			slots[st.outs[0]], err = e.MulRelin(a, slots[st.args[1]])
		case stepMulPlain:
			slots[st.outs[0]], err = e.MulPlain(a, st.pt)
		case stepAddPlain:
			slots[st.outs[0]], err = e.AddPlain(a, st.pt)
		case stepRescale:
			slots[st.outs[0]], err = e.Rescale(a)
		case stepRotate:
			slots[st.outs[0]], err = e.RotateLeft(a, st.rots[0])
		case stepRotateHoisted:
			var rots map[int]*Ciphertext
			rots, err = e.RotateHoisted(a, st.rots)
			for j, s := range st.rots {
				if err == nil {
					slots[st.outs[j]] = rots[s]
				}
			}
		case stepConjugate:
			slots[st.outs[0]], err = e.ConjugateSlots(a)
		case stepInnerSum:
			slots[st.outs[0]], err = e.InnerSum(a, st.n2)
		case stepCopy:
			slots[st.outs[0]] = CopyOf(a)
		default:
			t.Fatalf("replay: unknown step kind %d", st.kind)
		}
		if err != nil {
			t.Fatalf("replay step %d (%s): %v", i, stepKindNames[st.kind], err)
		}
	}
	out := make(map[string]*Ciphertext, len(p.outputs))
	for _, o := range p.outputs {
		out[o.name] = slots[o.slot]
	}
	return out
}

// The example circuits, rebuilt here exactly as examples/ builds them.

func logisticCircuit(features int, w []float64, bias float64) *Circuit {
	c := NewCircuit()
	var tAcc Node
	for j := 0; j < features; j++ {
		term := c.MulConst(c.Input(fmt.Sprintf("x%d", j)), w[j])
		if j == 0 {
			tAcc = term
		} else {
			tAcc = c.Add(tAcc, term)
		}
	}
	y := c.AddConst(tAcc, bias)
	tt := c.MulRelin(y, y)
	cubic := c.MulRelin(c.MulConst(y, -0.004), tt)
	linear := c.MulConst(y, 0.197)
	c.Output("score", c.AddConst(c.Add(cubic, linear), 0.5))
	return c
}

func matvecCircuit(m [][]float64) *Circuit {
	dim := len(m)
	c := NewCircuit()
	x := c.Input("x")
	var acc Node
	for d := 0; d < dim; d++ {
		diag := make([]float64, dim)
		for i := 0; i < dim; i++ {
			diag[i] = m[i][(i+d)%dim]
		}
		term := c.MulPlain(c.Rotate(x, d), diag)
		if d == 0 {
			acc = term
		} else {
			acc = c.Add(acc, term)
		}
	}
	c.Output("y", acc)
	return c
}

func statisticsCircuit(slots int) *Circuit {
	c := NewCircuit()
	x := c.Input("x")
	c.Output("sum", c.InnerSum(x, slots))
	c.Output("sumsq", c.InnerSum(c.MulRelin(x, x), slots))
	return c
}

// mixedCircuit exercises every node kind on one DAG (for Set-C, whose
// ladder the shallow example circuits never stress).
func mixedCircuit() *Circuit {
	c := NewCircuit()
	x := c.Input("x")
	y := c.Input("y")
	rot := c.Add(c.Rotate(x, 1), c.Rotate(x, 2))
	prod := c.MulRelin(c.Sub(rot, y), x)
	c.Output("a", c.AddConst(c.InnerSum(prod, 4), 0.125))
	c.Output("b", c.ConjugateSlots(c.AddPlain(c.MulRelin(prod, prod), []float64{0.5, -0.5})))
	return c
}

func TestPlanOracleExampleCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randVec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64()*2 - 1
		}
		return v
	}

	type circuitCase struct {
		name      string
		spec      ParamSpec
		steps     []int
		conjugate bool
		circuit   *Circuit
		inputs    func(t *testing.T, k *oracleKit) map[string]*Ciphertext
	}

	const dim = 8
	m := make([][]float64, dim)
	for i := range m {
		m[i] = randVec(dim)
	}
	w := randVec(dim)
	const statSlots = 64

	var statSteps []int
	for s := 1; s < statSlots; s <<= 1 {
		statSteps = append(statSteps, s)
	}

	cases := []circuitCase{
		{
			name:    "matvec/Set-A",
			spec:    SetA,
			steps:   []int{1, 2, 3, 4, 5, 6, 7},
			circuit: matvecCircuit(m),
			inputs: func(t *testing.T, k *oracleKit) map[string]*Ciphertext {
				rep := make([]float64, 2*dim)
				copy(rep, randVec(dim))
				copy(rep[dim:], rep[:dim])
				return map[string]*Ciphertext{"x": k.encrypt(t, rep)}
			},
		},
		{
			name:    "logistic/Set-B",
			spec:    SetB,
			circuit: logisticCircuit(dim, w, 0.25),
			inputs: func(t *testing.T, k *oracleKit) map[string]*Ciphertext {
				in := make(map[string]*Ciphertext, dim)
				for j := 0; j < dim; j++ {
					in[fmt.Sprintf("x%d", j)] = k.encrypt(t, randVec(16))
				}
				return in
			},
		},
		{
			name:    "statistics/Set-B",
			spec:    SetB,
			steps:   statSteps,
			circuit: statisticsCircuit(statSlots),
			inputs: func(t *testing.T, k *oracleKit) map[string]*Ciphertext {
				return map[string]*Ciphertext{"x": k.encrypt(t, randVec(statSlots))}
			},
		},
		{
			name:      "mixed/Set-C",
			spec:      SetC,
			steps:     []int{1, 2},
			conjugate: true,
			circuit:   mixedCircuit(),
			inputs: func(t *testing.T, k *oracleKit) map[string]*Ciphertext {
				return map[string]*Ciphertext{
					"x": k.encrypt(t, randVec(8)),
					"y": k.encrypt(t, randVec(8)),
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := newOracleKit(t, tc.spec, tc.steps, tc.conjugate)
			plan, err := tc.circuit.Compile(k.params, k.evk,
				WithPlanWorkers(2), WithPlanInFlight(4))
			if err != nil {
				t.Fatal(err)
			}
			in := tc.inputs(t, k)
			want := replayPlan(t, plan, in)
			for run := 0; run < 2; run++ {
				got, err := plan.Run(in)
				if err != nil {
					t.Fatal(err)
				}
				for name, ct := range want {
					if !ctBitEqual(ct, got[name]) {
						t.Fatalf("run %d: output %q differs from the imperative replay\n%s",
							run, name, plan.Describe())
					}
				}
			}
			// And streamed through RunBatch, which shares the same pools.
			batch, err := plan.RunBatch([]map[string]*Ciphertext{in, in, in})
			if err != nil {
				t.Fatal(err)
			}
			for i, out := range batch {
				for name, ct := range want {
					if !ctBitEqual(ct, out[name]) {
						t.Fatalf("batch %d: output %q differs from the imperative replay", i, name)
					}
				}
			}
		})
	}
}
