//go:build !race

package heax_test

const raceEnabled = false
