package heax

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"heax/internal/ckks"
)

// Compile is the middle stage of build → compile → run: it runs scale
// and level inference over the circuit DAG, inserts every Rescale /
// lift / copy the dataflow needs, eliminates common subexpressions,
// prunes dead nodes, groups same-source rotations into hoisted-
// decomposition batches, and returns an immutable, concurrency-safe
// Plan bound to params and evk.
//
// Inference tracks a free per-node (level, scale) pair: a node is
// either *base* (rescaled) or a *product* (unrescaled, carrying the
// full product of its factors' scales). Plaintext factors are encoded
// at the operand's own scale, so plaintext and ciphertext products
// follow the same scale algebra (s·s) and same-level values keep
// bit-identical scales. A rescale that would land below the default
// scale Δ — the fate of every product on parameter sets whose primes
// outsize Δ, such as Set-C's 49-bit primes against Δ = 2^40 — is
// preceded by a multiplication with an encoded 1 at an exact power of
// two (a "lift"), so every rescaled value keeps ≈Δ bits of precision
// above the rounding noise and deep circuits use the whole modulus
// chain. Additions meet mismatched operands by rescaling down to a
// common level and lifting the smaller-scale side by the scale ratio
// (exact for integer ratios; boosted above 2^30 otherwise so the
// rounding of the encoded 1 stays below scheme noise). No valid
// assignment — a multiplication below level 0, a scale outgrowing the
// level's modulus or underflowing 1, a key the EvaluationKeySet lacks
// — fails here, before anything runs, with the usual sentinels
// (ErrLevelMismatch, ErrScaleMismatch, ErrKeyMissing).
func (c *Circuit) Compile(params *Params, evk *EvaluationKeySet, opts ...CompileOption) (*Plan, error) {
	if c.err != nil {
		return nil, c.err
	}
	if len(c.outputs) == 0 {
		return nil, fmt.Errorf("heax: circuit has no outputs: %w", ErrInvalidCircuit)
	}
	if evk == nil {
		evk = &EvaluationKeySet{}
	}
	cfg := compileConfig{hoist: true, inFlight: 2 * runtime.GOMAXPROCS(0), batchWindow: 2}
	for _, opt := range opts {
		opt(&cfg)
	}

	rep := c.eliminateCommon(params)
	reach := c.reachable(rep)

	k := &compiler{
		circ:    c,
		params:  params,
		evk:     evk,
		enc:     NewEncoder(params),
		state:   make([]valState, len(c.nodes)),
		rep:     rep,
		canon:   make(map[int]valState),
		lifted:  make(map[liftKey]valState),
		isInput: make(map[int]bool),
	}
	k.modBits = make([]float64, params.K())
	bits := 0.0
	for i, q := range params.Q {
		bits += math.Log2(float64(q))
		k.modBits[i] = bits
	}

	for id := range c.nodes {
		if rep[id] != id || !reach[id] {
			continue
		}
		if err := k.lower(id); err != nil {
			return nil, err
		}
	}

	outputs, err := k.bindOutputs()
	if err != nil {
		return nil, err
	}
	if cfg.hoist {
		k.hoistRotations()
	}

	p := &Plan{
		params:    params,
		eval:      NewEvaluator(params, evk, evalOpts(cfg)...),
		steps:     k.steps,
		nSlots:    k.nSlots,
		inputs:    k.inputSlots,
		outputs:   outputs,
		consumers: make([]int, k.nSlots),
		escapes:   make([]bool, k.nSlots),
		inputSlot: make([]bool, k.nSlots),
		sem:       make(chan struct{}, cfg.inFlight),
		window:    cfg.batchWindow,
	}
	for _, st := range p.steps {
		for _, a := range st.args {
			p.consumers[a]++
		}
	}
	for _, o := range p.outputs {
		p.escapes[o.slot] = true
	}
	for _, in := range p.inputs {
		p.inputSlot[in.slot] = true
	}
	// Prove the pool's buffer shape constructible once, here, where an
	// error can still be returned; the pool's New then runs panic-free
	// on the request path (a plan buffer that cannot be represented is a
	// compile-time rejection, not a runtime crash).
	if _, err := NewCiphertext(params, 1, params.MaxLevel(), 0); err != nil {
		return nil, fmt.Errorf("heax: compile: plan buffer shape (degree 1, level %d) rejected: %w",
			params.MaxLevel(), errors.Join(ErrUnencodable, err))
	}
	p.bufs = &syncCtPool{p: sync.Pool{New: func() any {
		ct, _ := NewCiphertext(params, 1, params.MaxLevel(), 0) // shape validated at compile time
		return ct
	}}}
	return p, nil
}

// CompileOption configures Compile.
type CompileOption func(*compileConfig)

type compileConfig struct {
	hoist       bool
	inFlight    int
	batchWindow int
	workers     int
}

func evalOpts(cfg compileConfig) []EvaluatorOption {
	if cfg.workers > 0 {
		return []EvaluatorOption{WithWorkers(cfg.workers)}
	}
	return nil
}

// WithoutHoisting disables the grouping of same-source rotations into
// hoisted-decomposition batches (the hoisted kernel is numerically
// equivalent but not bit-identical to step-by-step rotation; disable it
// to compare against the plain path).
func WithoutHoisting() CompileOption {
	return func(cfg *compileConfig) { cfg.hoist = false }
}

// WithPlanInFlight bounds how many plan steps may execute concurrently
// across all Run/RunBatch calls on the compiled plan — the analogue of
// Session's WithMaxInFlight. Defaults to 2×GOMAXPROCS.
func WithPlanInFlight(n int) CompileOption {
	return func(cfg *compileConfig) {
		if n < 1 {
			n = 1
		}
		cfg.inFlight = n
	}
}

// WithPlanWorkers caps the row-level worker fan-out of the plan's
// internal evaluator (per-evaluator, as WithWorkers).
func WithPlanWorkers(n int) CompileOption {
	return func(cfg *compileConfig) { cfg.workers = n }
}

// WithBatchWindow sets how many input sets RunBatch keeps in flight at
// once. Defaults to 2 — the paper's double-buffered host queue.
func WithBatchWindow(n int) CompileOption {
	return func(cfg *compileConfig) {
		if n < 1 {
			n = 1
		}
		cfg.batchWindow = n
	}
}

// --- CSE and pruning -------------------------------------------------------

// eliminateCommon maps every node to its representative: the earliest
// node computing the same value. Add and MulRelin are commutative, so
// their operands are compared order-insensitively; plaintext payloads
// are compared by value. Rotation steps are reduced modulo the slot
// count first — Rotate(a, 1) and Rotate(a, 1−slots) are the same slot
// permutation — so equivalent rotations share one step (and one Galois
// key), and a rotation that normalizes to 0 collapses onto its operand.
func (c *Circuit) eliminateCommon(params *Params) []int {
	rep := make([]int, len(c.nodes))
	seen := make(map[string][]int)
	for id, n := range c.nodes {
		rep[id] = id
		if n.kind == kindInput {
			continue // inputs are already deduplicated by name
		}
		step := n.step
		if n.kind == kindRotate {
			step = params.NormalizeRotation(step)
			if step == 0 { // identity: the node IS its operand
				rep[id] = rep[n.args[0]]
				continue
			}
		}
		args := make([]int, len(n.args))
		for i, a := range n.args {
			args[i] = rep[a]
		}
		if n.kind == kindAdd || n.kind == kindMulRelin {
			sort.Ints(args)
		}
		key := fmt.Sprintf("%d|%v|%d|%d", n.kind, args, step, n.n2)
		for _, prior := range seen[key] {
			if samePayload(&c.nodes[prior], &n) {
				rep[id] = prior
				break
			}
		}
		if rep[id] == id {
			seen[key] = append(seen[key], id)
		}
	}
	return rep
}

func samePayload(a, b *cnode) bool {
	if a.broadcast != b.broadcast || a.scalar != b.scalar ||
		a.periodic != b.periodic || len(a.vals) != len(b.vals) {
		return false
	}
	for i := range a.vals {
		if a.vals[i] != b.vals[i] {
			return false
		}
	}
	return true
}

// reachable marks the nodes whose values flow into an output.
func (c *Circuit) reachable(rep []int) []bool {
	reach := make([]bool, len(c.nodes))
	var stack []int
	for _, o := range c.outputs {
		stack = append(stack, rep[o.node])
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[id] {
			continue
		}
		reach[id] = true
		for _, a := range c.nodes[id].args {
			stack = append(stack, rep[a])
		}
	}
	return reach
}

// --- Inference and lowering ------------------------------------------------

type tier uint8

const (
	tierBase    tier = iota // rescaled: feed multiplications as-is
	tierProduct             // an unrescaled product: rescale before multiplying again
)

// minLiftScale is the smallest plaintext scale a compiler-inserted
// multiplier (an encoded constant) may carry when the requested scale
// ratio is not an exact integer: at t ≥ 2^30 the encoded round(t)/t
// deviates from the intended multiplier by at most 2^-31, below scheme
// noise. Exact-integer ratios encode exactly at any magnitude.
const minLiftScale = float64(1 << 30)

// minPlainBits is the minimum scale headroom (in bits) a plaintext
// factor must get; below this the payload would be quantized to junk,
// so compilation fails with ErrScaleMismatch instead.
const minPlainBits = 12.0

// valState is the inferred placement of one circuit value.
type valState struct {
	slot  int
	level int
	scale float64
	tier  tier
}

// liftKey identifies one compiler-inserted multiply-by-encoded-1: the
// source slot and the bit pattern of the plaintext scale it was lifted
// by (different ratios are different steps; same ratio is shared).
type liftKey struct {
	slot int
	t    uint64
}

type compiler struct {
	circ   *Circuit
	params *Params
	evk    *EvaluationKeySet
	enc    *Encoder
	// modBits[ℓ] is log2 of the ciphertext modulus at level ℓ, for the
	// scale-overflow guard.
	modBits []float64

	rep   []int
	state []valState
	// canon caches the rescaled (base) form per slot; lifted caches the
	// ones-multiplied forms per (slot, scale) — so shared consumers pay
	// each maintenance op once.
	canon  map[int]valState
	lifted map[liftKey]valState

	steps      []planStep
	nSlots     int
	inputSlots []planInput
	isInput    map[int]bool
}

func (k *compiler) st(node int) valState { return k.state[k.rep[node]] }

func (k *compiler) newSlot() int {
	k.nSlots++
	return k.nSlots - 1
}

func (k *compiler) emit(s planStep) int {
	out := k.newSlot()
	s.outs = []int{out}
	k.steps = append(k.steps, s)
	return out
}

// checkScale guards the inferred assignment: a scale that underflows 1
// or outgrows the level's modulus cannot decrypt to anything useful, so
// the circuit is rejected at compile time.
func (k *compiler) checkScale(what string, level int, scale float64) error {
	if scale < 1 {
		return fmt.Errorf("heax: compile: %s at level %d underflows to scale %g (modulus chain too shallow for this depth): %w",
			what, level, scale, ErrScaleMismatch)
	}
	if math.Log2(scale) > k.modBits[level]-4 {
		return fmt.Errorf("heax: compile: %s at level %d needs scale 2^%.1f but the modulus holds only 2^%.1f: %w",
			what, level, math.Log2(scale), k.modBits[level], ErrScaleMismatch)
	}
	return nil
}

// canonical returns v in base form, inserting the Rescale when v is a
// product (memoized per slot). When the rescale would land below the
// default scale — a product of already-rescaled operands divided by a
// prime that outsizes them — the value is first lifted by an exact
// power of two so the result keeps ≈Δ bits of precision above the
// rescale's rounding noise.
func (k *compiler) canonical(v valState) (valState, error) {
	if v.tier == tierBase {
		return v, nil
	}
	if cached, ok := k.canon[v.slot]; ok {
		return cached, nil
	}
	if v.level == 0 {
		return v, fmt.Errorf("heax: compile: circuit needs a rescale below level 0 — more multiplicative depth than the parameter set provides: %w",
			ErrLevelMismatch)
	}
	orig := v.slot
	q := float64(k.params.Q[v.level])
	if target := k.params.DefaultScale(); v.scale/q < target {
		r := math.Exp2(math.Ceil(math.Log2(target * q / v.scale)))
		if r > 1 && math.Log2(v.scale*r) <= k.modBits[v.level]-4 {
			var err error
			if v, err = k.liftBy(v, r); err != nil {
				return v, err
			}
		}
	}
	scale := v.scale / q
	out := valState{level: v.level - 1, scale: scale, tier: tierBase}
	if err := k.checkScale("rescale", out.level, scale); err != nil {
		return v, err
	}
	out.slot = k.emit(planStep{kind: stepRescale, args: []int{v.slot}, level: out.level, scale: scale})
	k.canon[orig] = out
	return out, nil
}

// liftBy multiplies v by an encoded 1 at plaintext scale t, scaling v
// up to v.scale·t without consuming a level (memoized per slot and
// ratio). Lifting is how an addition meets an operand at a larger
// scale, and — with t = q_ℓ — how a value hops down a level without
// changing its scale.
func (k *compiler) liftBy(v valState, t float64) (valState, error) {
	key := liftKey{slot: v.slot, t: math.Float64bits(t)}
	if cached, ok := k.lifted[key]; ok {
		return cached, nil
	}
	pt, err := k.encodeConst(1, v.level, t)
	if err != nil {
		return v, err
	}
	out := valState{level: v.level, scale: v.scale * t, tier: tierProduct}
	if err := k.checkScale("lift", out.level, out.scale); err != nil {
		return v, err
	}
	out.slot = k.emit(planStep{kind: stepMulPlain, args: []int{v.slot}, pt: pt, level: out.level, scale: out.scale, lifted: true})
	k.lifted[key] = out
	return out, nil
}

// descend lowers v to the target level: products rescale (one level
// each), base values hop by lift-at-q_ℓ + rescale — the q_ℓ divides
// right back out, so a hop preserves the scale to the float rounding
// the runtime itself performs.
func (k *compiler) descend(v valState, level int) (valState, error) {
	var err error
	for v.level > level {
		if v.tier == tierBase {
			if v, err = k.liftBy(v, float64(k.params.Q[v.level])); err != nil {
				return v, err
			}
		}
		if v, err = k.canonical(v); err != nil {
			return v, err
		}
	}
	return v, nil
}

// reconcile places two addition operands on a common level and
// runtime-compatible (ScalesClose) scales: both descend to the lower
// operand's level, then the smaller-scale side is lifted by the exact
// scale ratio. Integer ratios (the common case — power-of-two scales)
// encode exactly; fractional ratios below minLiftScale are boosted on
// both sides so the rounding of the encoded constants stays below
// scheme noise. Operand order is preserved (Sub is order-sensitive).
func (k *compiler) reconcile(a, b valState) (valState, valState, error) {
	level := min(a.level, b.level)
	var err error
	if a, err = k.descend(a, level); err != nil {
		return a, b, err
	}
	if b, err = k.descend(b, level); err != nil {
		return a, b, err
	}
	if ckks.ScalesClose(a.scale, b.scale) {
		return a, b, nil
	}
	lo, hi := &a, &b
	if lo.scale > hi.scale {
		lo, hi = hi, lo
	}
	r := hi.scale / lo.scale
	if r == math.Trunc(r) || r >= minLiftScale {
		*lo, err = k.liftBy(*lo, r)
		return a, b, err
	}
	if *lo, err = k.liftBy(*lo, r*minLiftScale); err != nil {
		return a, b, err
	}
	*hi, err = k.liftBy(*hi, minLiftScale)
	return a, b, err
}

func (k *compiler) encodeVals(n *cnode, level int, scale float64) (*Plaintext, error) {
	op := nodeKindNames[n.kind]
	vals := n.vals
	switch {
	case n.broadcast:
		vals = make([]complex128, k.params.Slots())
		for i := range vals {
			vals[i] = complex(n.scalar, 0)
		}
	case n.periodic:
		if k.params.Slots()%len(vals) != 0 {
			return nil, fmt.Errorf("heax: compile: %s: periodic payload of %d values does not divide the %d slots of %s: %w",
				op, len(vals), k.params.Slots(), k.paramName(), ErrInvalidCircuit)
		}
		tiled := make([]complex128, k.params.Slots())
		for i := range tiled {
			tiled[i] = vals[i%len(vals)]
		}
		vals = tiled
	case len(vals) > k.params.Slots():
		return nil, fmt.Errorf("heax: compile: %d plaintext values exceed the %d slots of %s: %w",
			len(vals), k.params.Slots(), k.paramName(), ErrInvalidCircuit)
	}
	pt, err := k.enc.Encode(vals, level, scale)
	if err != nil {
		return nil, err
	}
	// A nonzero payload whose every coefficient rounds to zero at this
	// scale would silently turn the operation into ⊙0 / +0; that is a
	// compile error, not a plaintext (exact check: the encoded polynomial
	// itself, so slot patterns that merely lose precision still pass).
	if !zeroPayload(vals) && zeroPlaintext(pt) {
		return nil, fmt.Errorf("heax: compile: %s: payload with max magnitude %g encodes to the zero plaintext at level-%d scale 2^%.1f: %w",
			op, maxMagnitude(vals), level, math.Log2(scale), ErrUnencodable)
	}
	return pt, nil
}

func zeroPayload(vals []complex128) bool {
	for _, v := range vals {
		if v != 0 {
			return false
		}
	}
	return true
}

func maxMagnitude(vals []complex128) float64 {
	m := 0.0
	for _, v := range vals {
		m = math.Max(m, math.Max(math.Abs(real(v)), math.Abs(imag(v))))
	}
	return m
}

// zeroPlaintext reports whether an encoded plaintext is identically
// zero (the NTT is linear, so zero in evaluation form is zero in
// coefficient form).
func zeroPlaintext(pt *Plaintext) bool {
	for _, row := range pt.Value.Coeffs {
		for _, c := range row {
			if c != 0 {
				return false
			}
		}
	}
	return true
}

func (k *compiler) encodeConst(v float64, level int, scale float64) (*Plaintext, error) {
	vals := make([]float64, k.params.Slots())
	for i := range vals {
		vals[i] = v
	}
	return k.enc.EncodeReal(vals, level, scale)
}

func (k *compiler) paramName() string { return fmt.Sprintf("LogN=%d", k.params.LogN) }

func (k *compiler) rotationKeyPresent(step int) error {
	// Keys are stored under normalized steps; looking up the raw step
	// would falsely reject negative rotations whose key is present.
	norm := k.params.NormalizeRotation(step)
	if k.evk.Galois == nil || k.evk.Galois.Rotations[norm] == nil {
		return fmt.Errorf("heax: compile: circuit rotates by %d but the evaluation keys have no Galois key for it: %w",
			step, ErrKeyMissing)
	}
	return nil
}

// lower emits the plan steps for one representative, reachable node.
func (k *compiler) lower(id int) error {
	n := &k.circ.nodes[id]
	name := nodeKindNames[n.kind]
	switch n.kind {
	case kindInput:
		slot := k.newSlot()
		k.inputSlots = append(k.inputSlots, planInput{name: n.name, slot: slot})
		k.isInput[slot] = true
		k.state[id] = valState{slot: slot, level: k.params.MaxLevel(), scale: k.params.DefaultScale(), tier: tierBase}
		return nil

	case kindMulRelin:
		if k.evk.Relin == nil {
			return fmt.Errorf("heax: compile: circuit multiplies ciphertexts but the evaluation keys have no relinearization key: %w", ErrKeyMissing)
		}
		a, err := k.canonical(k.st(n.args[0]))
		if err != nil {
			return err
		}
		b, err := k.canonical(k.st(n.args[1]))
		if err != nil {
			return err
		}
		level := min(a.level, b.level)
		if a, err = k.descend(a, level); err != nil {
			return err
		}
		if b, err = k.descend(b, level); err != nil {
			return err
		}
		scale := a.scale * b.scale
		if err := k.checkScale(name, level, scale); err != nil {
			if level == 0 {
				// The product can't be held and there is no level left to
				// rescale into: the chain is out of depth, not out of scale.
				return fmt.Errorf("heax: compile: circuit needs a rescale below level 0 — more multiplicative depth than the parameter set provides: %w",
					ErrLevelMismatch)
			}
			return err
		}
		slot := k.emit(planStep{kind: stepMulRelin, args: []int{a.slot, b.slot}, level: level, scale: scale})
		k.state[id] = valState{slot: slot, level: level, scale: scale, tier: tierProduct}
		return nil

	case kindMulPlain:
		a, err := k.canonical(k.st(n.args[0]))
		if err != nil {
			return err
		}
		// Encode the factor at the operand's own scale, so a plaintext
		// product carries scale s² exactly like a ciphertext product of
		// equal operands — same-level values keep bit-identical scales
		// and additions reconcile without inserted lifts. When the
		// modulus can't hold s², fall back to the largest power-of-two
		// scale that fits (a power of two keeps downstream scale ratios
		// exact integers).
		t := a.scale
		if head := k.modBits[a.level] - 4 - math.Log2(a.scale); math.Log2(t) > head {
			if head < minPlainBits {
				return fmt.Errorf("heax: compile: %s at level %d has only 2^%.1f of modulus headroom for a plaintext factor (operand scale 2^%.1f, modulus 2^%.1f): %w",
					name, a.level, head, math.Log2(a.scale), k.modBits[a.level], ErrScaleMismatch)
			}
			t = math.Exp2(math.Floor(head))
		}
		pt, err := k.encodeVals(n, a.level, t)
		if err != nil {
			return err
		}
		scale := a.scale * t
		if err := k.checkScale(name, a.level, scale); err != nil {
			return err
		}
		slot := k.emit(planStep{kind: stepMulPlain, args: []int{a.slot}, pt: pt, level: a.level, scale: scale})
		k.state[id] = valState{slot: slot, level: a.level, scale: scale, tier: tierProduct}
		return nil

	case kindAddPlain:
		a := k.st(n.args[0])
		pt, err := k.encodeVals(n, a.level, a.scale)
		if err != nil {
			return err
		}
		slot := k.emit(planStep{kind: stepAddPlain, args: []int{a.slot}, pt: pt, level: a.level, scale: a.scale})
		k.state[id] = valState{slot: slot, level: a.level, scale: a.scale, tier: a.tier}
		return nil

	case kindAdd, kindSub:
		a, b, err := k.reconcile(k.st(n.args[0]), k.st(n.args[1]))
		if err != nil {
			return err
		}
		kind := stepAdd
		if n.kind == kindSub {
			kind = stepSub
		}
		// A sum with a product operand is itself an unrescaled product:
		// rescale before it feeds another multiplication.
		tr := a.tier
		if b.tier == tierProduct {
			tr = tierProduct
		}
		slot := k.emit(planStep{kind: kind, args: []int{a.slot, b.slot}, level: a.level, scale: a.scale})
		k.state[id] = valState{slot: slot, level: a.level, scale: a.scale, tier: tr}
		return nil

	case kindRotate:
		// eliminateCommon collapsed normalized-0 rotations onto their
		// operand, so the normalized step here is always nonzero.
		step := k.params.NormalizeRotation(n.step)
		if err := k.rotationKeyPresent(step); err != nil {
			return err
		}
		a := k.st(n.args[0])
		slot := k.emit(planStep{kind: stepRotate, args: []int{a.slot}, rots: []int{step}, level: a.level, scale: a.scale})
		k.state[id] = valState{slot: slot, level: a.level, scale: a.scale, tier: a.tier}
		return nil

	case kindConjugate:
		if k.evk.Galois == nil || k.evk.Galois.Conjugate == nil {
			return fmt.Errorf("heax: compile: circuit conjugates slots but the evaluation keys have no conjugation key: %w", ErrKeyMissing)
		}
		a := k.st(n.args[0])
		slot := k.emit(planStep{kind: stepConjugate, args: []int{a.slot}, level: a.level, scale: a.scale})
		k.state[id] = valState{slot: slot, level: a.level, scale: a.scale, tier: a.tier}
		return nil

	case kindInnerSum:
		for span := n.n2 >> 1; span >= 1; span >>= 1 {
			if norm := k.params.NormalizeRotation(span); norm != 0 {
				if err := k.rotationKeyPresent(norm); err != nil {
					return err
				}
			}
		}
		a := k.st(n.args[0])
		slot := k.emit(planStep{kind: stepInnerSum, args: []int{a.slot}, n2: n.n2, level: a.level, scale: a.scale})
		k.state[id] = valState{slot: slot, level: a.level, scale: a.scale, tier: a.tier}
		return nil
	}
	return fmt.Errorf("heax: compile: unknown node kind %d: %w", n.kind, ErrInternal)
}

// bindOutputs assigns each named output its slot, copying when an
// output would otherwise share a slot with an input or another output
// (plan outputs are always caller-owned, distinct ciphertexts).
func (k *compiler) bindOutputs() ([]planOutput, error) {
	used := make(map[int]bool)
	outs := make([]planOutput, 0, len(k.circ.outputs))
	for _, o := range k.circ.outputs {
		st := k.st(o.node)
		slot := st.slot
		if k.isInput[slot] || used[slot] {
			slot = k.emit(planStep{kind: stepCopy, args: []int{st.slot}, level: st.level, scale: st.scale})
		}
		used[slot] = true
		outs = append(outs, planOutput{name: o.name, slot: slot, level: st.level, scale: st.scale})
	}
	return outs, nil
}

// hoistRotations merges rotation steps sharing a source slot into one
// hoisted-decomposition batch: the merged step pays the per-digit INTT
// and cross-modulus NTTs of Algorithm 7 once for the whole group
// (Halevi–Shoup hoisting on the PR-2 tile scheduler). Merging at the
// group's earliest position is dependency-safe: every member depends
// only on the shared source, and every consumer appears after its
// member's original position.
func (k *compiler) hoistRotations() {
	groups := make(map[int][]int) // source slot -> step indices
	for i, s := range k.steps {
		if s.kind == stepRotate {
			groups[s.args[0]] = append(groups[s.args[0]], i)
		}
	}
	drop := make(map[int]bool)
	for src, members := range groups {
		if len(members) < 2 {
			continue
		}
		merged := planStep{
			kind:  stepRotateHoisted,
			args:  []int{src},
			level: k.steps[members[0]].level,
			scale: k.steps[members[0]].scale,
		}
		for _, i := range members {
			merged.rots = append(merged.rots, k.steps[i].rots[0])
			merged.outs = append(merged.outs, k.steps[i].outs[0])
			drop[i] = true
		}
		k.steps[members[0]] = merged
		drop[members[0]] = false
	}
	if len(drop) == 0 {
		return
	}
	kept := k.steps[:0]
	for i, s := range k.steps {
		if !drop[i] {
			kept = append(kept, s)
		}
	}
	k.steps = kept
}
