package heax

// White-box executor failure tests: inject kernel faults through the
// Plan.failStep seam and audit the buffer pool's ownership protocol
// with an instrumented pool — every drawn buffer must come back exactly
// once (no leak), and never twice (no double put), on every error path:
// kernel failure, ErrDependency poisoning, and cancellation. The plan
// must then serve a clean second run. Runs under -race in CI.

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
)

var errInjected = errors.New("injected kernel fault")

// auditPool is a ctBufPool that detects double puts and counts
// outstanding buffers.
type auditPool struct {
	t      *testing.T
	params *Params

	mu     sync.Mutex
	free   []*Ciphertext
	inPool map[*Ciphertext]bool
	gets   int
	puts   int
}

func newAuditPool(t *testing.T, params *Params) *auditPool {
	return &auditPool{t: t, params: params, inPool: make(map[*Ciphertext]bool)}
}

func (a *auditPool) get() *Ciphertext {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gets++
	if n := len(a.free); n > 0 {
		ct := a.free[n-1]
		a.free = a.free[:n-1]
		delete(a.inPool, ct)
		return ct
	}
	ct, err := NewCiphertext(a.params, 1, a.params.MaxLevel(), 0)
	if err != nil {
		panic(err)
	}
	return ct
}

func (a *auditPool) put(ct *Ciphertext) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.puts++
	if ct == nil {
		a.t.Error("pool: put of a nil ciphertext")
		return
	}
	if a.inPool[ct] {
		a.t.Error("pool: buffer returned twice")
		return
	}
	a.inPool[ct] = true
	a.free = append(a.free, ct)
}

func (a *auditPool) outstanding() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gets - a.puts
}

// failurePlan compiles a circuit with parallel branches, a hoisted
// multi-output rotation batch and a poisoning chain — enough structure
// that an injected fault at any step exercises dependents, multi-out
// recycling and independent branches at once.
func failurePlan(t *testing.T) (*oracleKit, *Plan, *auditPool) {
	t.Helper()
	k := newOracleKit(t, SetA, []int{1, 2}, false)
	c := NewCircuit()
	x := c.Input("x")
	sq := c.MulRelin(x, x)
	sum := c.Add(c.Rotate(x, 1), c.Rotate(x, 2))
	c.Output("y", c.Add(sq, sum))
	c.Output("z", c.AddConst(sq, 1))
	plan, err := c.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	pool := newAuditPool(t, k.params)
	plan.bufs = pool
	return k, plan, pool
}

func (k *oracleKit) failureInputs(t *testing.T, n int) []map[string]*Ciphertext {
	t.Helper()
	batches := make([]map[string]*Ciphertext, n)
	for i := range batches {
		batches[i] = map[string]*Ciphertext{"x": k.encrypt(t, []float64{0.5, -0.25, 1.0 + float64(i)})}
	}
	return batches
}

// TestPlanFailingStepPoolIntegrity injects a fault into every step of
// the plan in turn, streams a batch through RunBatch, and asserts that
// (1) the injected error is the reported root cause, (2) no pooled
// buffer leaked or was returned twice, and (3) the same plan then
// completes a clean, correct second run.
func TestPlanFailingStepPoolIntegrity(t *testing.T) {
	k, plan, pool := failurePlan(t)
	for idx := 0; idx < plan.NumSteps(); idx++ {
		plan.failStep = func(i int) error {
			if i == idx {
				return errInjected
			}
			return nil
		}
		_, err := plan.RunBatch(k.failureInputs(t, 3))
		if !errors.Is(err, errInjected) {
			t.Fatalf("fail@%d: want the injected fault as root cause, got %v", idx, err)
		}
		if n := pool.outstanding(); n != 0 {
			t.Fatalf("fail@%d: %d pooled buffers leaked", idx, n)
		}
	}

	// The plan must be reusable after every failure mode above.
	plan.failStep = nil
	out, err := plan.RunBatch(k.failureInputs(t, 2))
	if err != nil {
		t.Fatalf("clean run after injected failures: %v", err)
	}
	if n := pool.outstanding(); n != 0 {
		t.Fatalf("clean run: %d pooled buffers leaked", n)
	}
	for i, res := range out {
		pt, err := k.decryptor.Decrypt(res["z"])
		if err != nil {
			t.Fatal(err)
		}
		got := real(k.enc.Decode(pt)[2])
		want := (1.0+float64(i))*(1.0+float64(i)) + 1
		if math.Abs(got-want) > 1e-2 {
			t.Fatalf("batch %d: z slot 2 = %g, want %g", i, got, want)
		}
	}
}

// TestPlanPanickingStepRecovers injects a panic (not an error) into
// every step in turn: the executor's recover boundary must convert it
// into a typed error wrapping ErrInternal, keep the pool balanced, and
// leave the plan fully reusable — a panicking kernel poisons one run,
// never the process. This is the seam a crash-only serving daemon
// leans on: plan steps run on their own goroutines, so no caller-side
// recover could catch these.
func TestPlanPanickingStepRecovers(t *testing.T) {
	k, plan, pool := failurePlan(t)
	for idx := 0; idx < plan.NumSteps(); idx++ {
		plan.failStep = func(i int) error {
			if i == idx {
				panic("injected kernel panic")
			}
			return nil
		}
		_, err := plan.RunBatch(k.failureInputs(t, 3))
		if !errors.Is(err, ErrInternal) {
			t.Fatalf("panic@%d: want ErrInternal, got %v", idx, err)
		}
		if n := pool.outstanding(); n != 0 {
			t.Fatalf("panic@%d: %d pooled buffers leaked", idx, n)
		}
	}

	plan.failStep = nil
	if _, err := plan.RunBatch(k.failureInputs(t, 2)); err != nil {
		t.Fatalf("clean run after recovered panics: %v", err)
	}
	if n := pool.outstanding(); n != 0 {
		t.Fatalf("clean run: %d pooled buffers leaked", n)
	}
}

// TestPlanDependencyPoisoningKeepsPoolClean pins the poisoning path
// specifically: a failure in the earliest step poisons every dependent,
// and the poisoned steps' reference releases must still retire every
// in-flight pooled buffer exactly once.
func TestPlanDependencyPoisoningKeepsPoolClean(t *testing.T) {
	k, plan, pool := failurePlan(t)
	plan.failStep = func(i int) error {
		if i == 0 {
			return errInjected
		}
		return nil
	}
	_, err := plan.Run(map[string]*Ciphertext{"x": k.encrypt(t, []float64{1, 2, 3})})
	if !errors.Is(err, errInjected) {
		t.Fatalf("want injected root cause, got %v", err)
	}
	if n := pool.outstanding(); n != 0 {
		t.Fatalf("%d pooled buffers leaked through poisoned dependents", n)
	}
}

// TestPlanCancellationKeepsPoolClean cancels a run mid-flight (from
// inside a step, so cancellation lands while dependents are in every
// phase) and asserts the pool balances and the plan reruns cleanly.
func TestPlanCancellationKeepsPoolClean(t *testing.T) {
	k, plan, pool := failurePlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plan.failStep = func(i int) error {
		if i == 1 {
			cancel()
		}
		return nil
	}
	_, err := plan.RunBatchContext(ctx, k.failureInputs(t, 3))
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, errInjected) {
		t.Fatalf("unexpected error kind: %v", err)
	}
	if err == nil {
		t.Fatal("cancelled batch run should report an error")
	}
	if n := pool.outstanding(); n != 0 {
		t.Fatalf("%d pooled buffers leaked under cancellation", n)
	}

	plan.failStep = nil
	if _, err := plan.RunContext(context.Background(), map[string]*Ciphertext{"x": k.encrypt(t, []float64{1})}); err != nil {
		t.Fatalf("clean run after cancellation: %v", err)
	}
	if n := pool.outstanding(); n != 0 {
		t.Fatalf("clean run: %d pooled buffers leaked", n)
	}
}
