// Package cfg builds a per-function control-flow graph over statements,
// precise enough for path-sensitive leak checking: edges out of an `if`
// carry the branch condition (and whether the edge is the negation), so
// a caller tracking "v is non-nil here" can prune impossible paths like
// the false edge of `if v != nil { pool.Put(v) }`.
//
// Nodes inside a block never contain nested bodies — an IfStmt
// contributes only its condition expression, a RangeStmt only the
// ranged operand — so inspecting a block's nodes never double-visits
// statements that the graph models as separate blocks.
package cfg

import (
	"go/ast"
	"go/token"
	"strings"
)

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// A Block is a straight-line sequence of nodes with condition-annotated
// successor edges.
type Block struct {
	Nodes []ast.Node
	Succs []Edge
}

// An Edge is one control transfer. When Cond is non-nil the edge is
// taken iff Cond evaluates to !Negate. Panic marks exits through
// panic/os.Exit/log.Fatal — abnormal termination a resource checker may
// choose to ignore.
type Edge struct {
	To     *Block
	Cond   ast.Expr
	Negate bool
	Panic  bool
}

// New builds the CFG of body.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.labels = make(map[string]*Block)
	b.stmtList(body.List)
	b.edge(Edge{To: b.cfg.Exit}) // fall off the end
	return b.cfg
}

// scope is one enclosing breakable (and possibly continuable)
// construct.
type scope struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type builder struct {
	cfg          *CFG
	cur          *Block
	scopes       []scope
	labels       map[string]*Block
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(e Edge) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, e)
	}
}

func (b *builder) add(n ast.Node) {
	if n != nil && b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the label a LabeledStmt left for the construct it
// wraps.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(Edge{To: lb})
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		b.stmt2(s.Init)
		b.add(s.Cond)
		head := b.cur
		join := b.newBlock()

		then := b.newBlock()
		head.Succs = append(head.Succs, Edge{To: then, Cond: s.Cond})
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(Edge{To: join})

		if s.Else != nil {
			els := b.newBlock()
			head.Succs = append(head.Succs, Edge{To: els, Cond: s.Cond, Negate: true})
			b.cur = els
			b.stmt(s.Else)
			b.edge(Edge{To: join})
		} else {
			head.Succs = append(head.Succs, Edge{To: join, Cond: s.Cond, Negate: true})
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt2(s.Init)
		head := b.newBlock()
		b.edge(Edge{To: head})
		b.cur = head
		b.add(s.Cond)

		body := b.newBlock()
		exit := b.newBlock()
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
		}
		if s.Cond != nil {
			head.Succs = append(head.Succs,
				Edge{To: body, Cond: s.Cond},
				Edge{To: exit, Cond: s.Cond, Negate: true})
		} else {
			head.Succs = append(head.Succs, Edge{To: body})
		}
		cont := head
		if post != nil {
			cont = post
		}
		b.scopes = append(b.scopes, scope{label: label, brk: exit, cont: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(Edge{To: cont})
		b.scopes = b.scopes[:len(b.scopes)-1]
		if post != nil {
			b.cur = post
			b.stmt2(s.Post)
			b.edge(Edge{To: head})
		}
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock()
		b.edge(Edge{To: head})
		body := b.newBlock()
		exit := b.newBlock()
		head.Succs = append(head.Succs, Edge{To: body}, Edge{To: exit})
		b.scopes = append(b.scopes, scope{label: label, brk: exit, cont: head})
		b.cur = body
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		b.stmtList(s.Body.List)
		b.edge(Edge{To: head})
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := b.takeLabel()
		var body *ast.BlockStmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			b.stmt2(s.Init)
			b.add(s.Tag)
			body = s.Body
		case *ast.TypeSwitchStmt:
			b.stmt2(s.Init)
			b.add(s.Assign)
			body = s.Body
		}
		head := b.cur
		join := b.newBlock()
		b.scopes = append(b.scopes, scope{label: label, brk: join})
		var caseBlocks []*Block
		hasDefault := false
		for _, cc := range body.List {
			cc := cc.(*ast.CaseClause)
			cb := b.newBlock()
			caseBlocks = append(caseBlocks, cb)
			if cc.List == nil {
				hasDefault = true
			}
			head.Succs = append(head.Succs, Edge{To: cb})
		}
		for i, cc := range body.List {
			cc := cc.(*ast.CaseClause)
			b.cur = caseBlocks[i]
			for _, e := range cc.List {
				b.add(e)
			}
			b.stmtList(cc.Body)
			if fallsThrough(cc.Body) && i+1 < len(caseBlocks) {
				b.edge(Edge{To: caseBlocks[i+1]})
			} else {
				b.edge(Edge{To: join})
			}
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		if !hasDefault {
			head.Succs = append(head.Succs, Edge{To: join})
		}
		b.cur = join

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		join := b.newBlock()
		b.scopes = append(b.scopes, scope{label: label, brk: join})
		hasDefault := false
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CommClause)
			cb := b.newBlock()
			head.Succs = append(head.Succs, Edge{To: cb})
			if cc.Comm == nil {
				hasDefault = true
			}
			b.cur = cb
			b.stmt2(cc.Comm)
			b.stmtList(cc.Body)
			b.edge(Edge{To: join})
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		_ = hasDefault // a select with no default still resumes at join when a case fires
		b.cur = join

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(Edge{To: b.cfg.Exit})
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findScope(s.Label, false); t != nil {
				b.edge(Edge{To: t})
			}
		case token.CONTINUE:
			if t := b.findScope(s.Label, true); t != nil {
				b.edge(Edge{To: t})
			}
		case token.GOTO:
			b.edge(Edge{To: b.labelBlock(s.Label.Name)})
		case token.FALLTHROUGH:
			// Edge added by the switch builder.
			return
		}
		b.cur = b.newBlock() // unreachable continuation

	default:
		b.add(s)
		if isTerminalStmt(s) {
			b.edge(Edge{To: b.cfg.Exit, Panic: true})
			b.cur = b.newBlock()
		}
	}
}

// stmt2 handles the optional init/post simple statements.
func (b *builder) stmt2(s ast.Stmt) {
	if s != nil {
		b.stmt(s)
	}
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// findScope resolves a break (wantCont=false) or continue
// (wantCont=true) target, honoring an optional label.
func (b *builder) findScope(label *ast.Ident, wantCont bool) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if wantCont && sc.cont == nil {
			continue
		}
		if label != nil && sc.label != label.Name {
			continue
		}
		if wantCont {
			return sc.cont
		}
		return sc.brk
	}
	return nil
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminalStmt recognizes statements that never return control:
// panic(...), os.Exit(...), log.Fatal*(...).
func isTerminalStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if x.Name == "os" && fun.Sel.Name == "Exit" {
				return true
			}
			if x.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal") {
				return true
			}
		}
	}
	return false
}
