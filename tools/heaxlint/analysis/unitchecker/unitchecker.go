// Package unitchecker implements the `go vet -vettool` protocol: cmd/go
// invokes the tool once per package with a single JSON config-file
// argument describing the compilation unit (source files, the export
// data of every dependency, output paths), and expects diagnostics on
// stderr with a nonzero exit when any are found.
//
// This is a stdlib-only reimplementation of the x/tools unitchecker:
// type information for imports is loaded from the gc export data files
// cmd/go already built (via go/importer's lookup hook), so the tool
// needs no network, no module downloads, and no x/tools dependency.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"heax/tools/heaxlint/analysis"
)

// Config mirrors cmd/go's vetConfig (src/cmd/go/internal/work/exec.go):
// the JSON handed to a vet tool for one package. Unknown fields are
// ignored, so the tool stays compatible across toolchain revisions.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Main runs the protocol for the given analyzers and exits. It handles
// the -V=full build-ID handshake cmd/go performs before the first real
// invocation.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		// cmd/go's toolID handshake: `<name> version devel ... buildID=<id>`.
		// Hash our own executable so edits to the tool invalidate vet's
		// result cache.
		id := "unknown"
		if exe, err := os.Executable(); err == nil {
			if f, err := os.Open(exe); err == nil {
				h := sha256.New()
				io.Copy(h, f)
				f.Close()
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
		}
		fmt.Printf("%s version devel buildID=%s\n", progname, id)
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		// cmd/go probes the tool's supported flags as a JSON array
		// (cmd/go/internal/vet/vetflag.go). The suite takes none.
		fmt.Println("[]")
		os.Exit(0)
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, `%s: must be run by "go vet"

Usage:
	go vet -vettool=$(which %s) ./...
`, progname, progname)
		os.Exit(1)
	}
	if err := run(args[0], analyzers); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
}

func run(cfgFile string, analyzers []*analysis.Analyzer) error {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgFile, err)
	}
	// Dependency-only invocation: cmd/go wants a facts (vetx) file so it
	// can cache the run. None of our analyzers use cross-package facts,
	// so the file is empty — written before any work, keeping dependency
	// sweeps (the entire standard library on a cold cache) near-free.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return err
	}

	var diags []diag
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, diag{fset.Position(d.Pos), a.Name, d.Message})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	if len(diags) == 0 {
		return nil
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos.Filename != diags[j].pos.Filename {
			return diags[i].pos.Filename < diags[j].pos.Filename
		}
		if diags[i].pos.Line != diags[j].pos.Line {
			return diags[i].pos.Line < diags[j].pos.Line
		}
		return diags[i].pos.Column < diags[j].pos.Column
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.pos, d.name, d.msg)
	}
	os.Exit(2) // nonzero: go vet reports the package as failing
	return nil
}

type diag struct {
	pos  token.Position
	name string
	msg  string
}

// typecheck type-checks the unit against the export data cmd/go listed
// in cfg.PackageFile, resolving source-level import paths through
// cfg.ImportMap exactly as the compiler did.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *Config) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tc := &types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		Sizes:     types.SizesFor("gc", buildArch()),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}
