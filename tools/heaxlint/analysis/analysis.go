// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface that heaxlint's checkers
// are written against. The repository's root module is intentionally
// dependency-free and this build environment is offline, so rather
// than vendoring x/tools the suite carries the small subset it needs:
// an Analyzer/Pass pair, positional diagnostics, and the comment
// directives (`//heax:owns`, `//heax:allowpanic`, `//heax:noalloc`)
// the analyzers honor.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check. Name must be a valid identifier; it
// prefixes every diagnostic the analyzer reports.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// A Pass is one analyzer applied to one package. The driver fills in
// the syntax, type information and the Report sink; Run inspects and
// reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	directives map[*ast.File]*Directives
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Directives indexes a file's `//heax:<name> [note]` comments by line.
// A directive governs the source line it is written on and, when it
// stands alone on its line, the line immediately below — so both
//
//	outs[i] = p.bufs.get() //heax:owns handed to the run slot
//
// and
//
//	//heax:owns handed to the run slot
//	outs[i] = p.bufs.get()
//
// mark the same statement.
type Directives struct {
	fset  *token.FileSet
	byLn  map[int][]string
	alone map[int]bool
}

// FileDirectives scans (and caches) file's heax directives.
func (p *Pass) FileDirectives(file *ast.File) *Directives {
	if p.directives == nil {
		p.directives = make(map[*ast.File]*Directives)
	}
	if d, ok := p.directives[file]; ok {
		return d
	}
	// codeLines marks every line on which a statement or declaration
	// starts, so a directive comment sharing a line with code governs
	// that line, while one standing alone also governs the next.
	codeLines := make(map[int]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl, *ast.Field:
			codeLines[p.Fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	d := &Directives{fset: p.Fset, byLn: make(map[int][]string), alone: make(map[int]bool)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//heax:")
			if !ok {
				continue
			}
			name, _, _ := strings.Cut(text, " ")
			line := p.Fset.Position(c.Pos()).Line
			d.byLn[line] = append(d.byLn[line], name)
			d.alone[line] = !codeLines[line]
		}
	}
	p.directives[file] = d
	return d
}

// Has reports whether directive name governs the line holding pos:
// written on that line, or standing alone on the line above.
func (d *Directives) Has(name string, pos token.Pos) bool {
	line := d.fset.Position(pos).Line
	for _, n := range d.byLn[line] {
		if n == name {
			return true
		}
	}
	if d.alone[line-1] {
		for _, n := range d.byLn[line-1] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// IsTestFile reports whether file came from a _test.go source file.
// Test code exercises failure paths deliberately (panics, bare errors,
// leaked buffers in teardown) and is exempt from every heaxlint check.
func IsTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}

// EnclosingFuncDecl returns the top-level function declaration whose
// body spans pos, or nil.
func EnclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Pos() <= pos && pos < fn.End() {
			return fn
		}
	}
	return nil
}

// FuncHas reports whether directive name governs fn as a whole: in its
// doc comment, on its declaration line, or alone on the line above.
func (d *Directives) FuncHas(name string, fn *ast.FuncDecl) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if text, ok := strings.CutPrefix(c.Text, "//heax:"); ok {
				got, _, _ := strings.Cut(text, " ")
				if got == name {
					return true
				}
			}
		}
	}
	return d.Has(name, fn.Pos())
}
