// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against `// want "regexp"` comments in the
// fixture source — the golden-test idiom of x/tools' analysistest,
// reimplemented on the stdlib. Fixtures live under
// <dir>/src/<pkgpath>/*.go and are typechecked with the source
// importer, so they may import the standard library (compiled from
// GOROOT/src, no network or export data needed) but must not import
// other fixture packages.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"heax/tools/heaxlint/analysis"
)

// wantRe extracts the expectation list of one `// want` comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRe extracts each double- or back-quoted pattern from the list.
var quotedRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run applies a to the fixture package at <dir>/src/<pkgpath> and
// reports mismatches between its diagnostics and the fixture's
// `// want` comments through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	srcDir := filepath.Join(dir, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(srcDir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", srcDir)
	}

	tc := &types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	checkDiagnostics(t, fset, a.Name, got, wants)
}

// a want is one expected-diagnostic pattern at a file:line.
type want struct {
	pos     string // "file.go:17"
	pattern *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				quoted := quotedRe.FindAllStringSubmatch(m[1], -1)
				if len(quoted) == 0 {
					t.Errorf("%s: malformed want comment %q", key, c.Text)
					continue
				}
				for _, q := range quoted {
					text := q[1]
					if q[2] != "" {
						text = q[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", key, text, err)
						continue
					}
					wants = append(wants, &want{pos: key, pattern: re})
				}
			}
		}
	}
	return wants
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, name string, got []analysis.Diagnostic, wants []*want) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		found := false
		for _, w := range wants {
			if !w.matched && w.pos == key && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", key, name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.pattern)
		}
	}
}
