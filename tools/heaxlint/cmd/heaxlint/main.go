// Command heaxlint is the multichecker for the repository's custom
// invariant analyzers. It is run by cmd/go, not by hand:
//
//	go build -o /tmp/heaxlint ./tools/heaxlint/cmd/heaxlint
//	go vet -vettool=/tmp/heaxlint ./...
//
// or, from the repository root, via scripts/lint.sh. See DESIGN.md's
// "Static analysis" section for what each analyzer enforces.
package main

import (
	"heax/tools/heaxlint/analysis/unitchecker"
	"heax/tools/heaxlint/passes/atomicalign"
	"heax/tools/heaxlint/passes/noalloc"
	"heax/tools/heaxlint/passes/nopanic"
	"heax/tools/heaxlint/passes/poolbalance"
	"heax/tools/heaxlint/passes/rotnorm"
	"heax/tools/heaxlint/passes/sentinelwrap"
)

func main() {
	unitchecker.Main(
		poolbalance.Analyzer,
		nopanic.Analyzer,
		sentinelwrap.Analyzer,
		rotnorm.Analyzer,
		noalloc.Analyzer,
		atomicalign.Analyzer,
	)
}
