module heax/tools/heaxlint

go 1.22
