// Package nopanic enforces the crash-only serving contract (PR 7): no
// panic may be reachable from the serving and plan-execution packages.
// A panic that escapes a request path kills the whole multi-tenant
// daemon; the repository's discipline is that such failures become
// typed ErrInternal returns instead, recovered at the executor and
// connection boundaries.
//
// The check is syntactic: any `panic(...)` call in a governed package
// is a violation unless the site (or its enclosing function) carries a
// `//heax:allowpanic <why>` directive. The directive is reserved for
// documented constructor-misuse panics — programming errors at process
// start (obs metric registration, circuits degree bounds), never
// request-time states.
package nopanic

import (
	"go/ast"
	"go/types"

	"heax/tools/heaxlint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbid panics in request-handling packages without //heax:allowpanic",
	Run:  run,
}

// Packages lists the import paths the check governs: the public request
// paths (root evaluator/plan/session, the serving daemon and its WAL,
// observability and the circuits layer). Kernel packages under
// internal/ keep their argument-contract panics: the plan executor's
// recover boundary converts those into typed ErrInternal per request.
var Packages = map[string]bool{
	"heax":               true,
	"heax/serve":         true,
	"heax/serve/durable": true,
	"heax/obs":           true,
	"heax/circuits":      true,
}

func run(pass *analysis.Pass) (any, error) {
	if !Packages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		dirs := pass.FileDirectives(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Parent() != types.Universe {
				return true // shadowed: something local named panic
			}
			if dirs.Has("allowpanic", call.Pos()) {
				return true
			}
			if fn := analysis.EnclosingFuncDecl(file, call.Pos()); fn != nil && dirs.FuncHas("allowpanic", fn) {
				return true
			}
			pass.Reportf(call.Pos(), "panic in request-handling package %s: return a typed error (wrap heax.ErrInternal) or document the constructor contract with //heax:allowpanic", pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}
