package heax

import "fmt"

// reachable panics on request paths are the bug class PR 7 eliminated.
func handle(n int) error {
	if n < 0 {
		panic("negative") // want `panic in request-handling package heax`
	}
	if n > 100 {
		panic(fmt.Sprintf("n=%d", n)) // want `panic in request-handling package heax`
	}
	return nil
}

// allowlisted at the statement: documented constructor misuse.
func mustPositive(n int) int {
	if n <= 0 {
		//heax:allowpanic constructor contract
		panic("mustPositive")
	}
	return n
}

//heax:allowpanic whole function is a must-helper
func mustEven(n int) int {
	if n%2 != 0 {
		panic("mustEven")
	}
	return n
}

// a shadowing declaration makes panic an ordinary function.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
