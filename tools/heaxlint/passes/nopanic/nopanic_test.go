package nopanic_test

import (
	"testing"

	"heax/tools/heaxlint/analysis/analysistest"
	"heax/tools/heaxlint/passes/nopanic"
)

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, "testdata", nopanic.Analyzer, "heax")
}
