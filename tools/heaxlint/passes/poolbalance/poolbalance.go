// Package poolbalance enforces the single-owner pooled-buffer protocol
// (DESIGN.md): a buffer taken from a pool (ring.Context.GetPoly /
// GetPolyNoZero, plan ctBufPool.get, getSlots, digit-decomposition
// NewGroup) must, on every control-flow path, be returned to the pool
// (PutPoly / put / putSlots / PutGroup), returned to the caller
// (ownership transfer by convention), or stored somewhere marked
// `//heax:owns`. A path that reaches function exit still holding the
// buffer is a leak: the pool refills from the heap and the zero-alloc
// steady state erodes — exactly the class of bug the runtime alloc
// tests only catch on the inputs they drive.
//
// The check is path-sensitive about nil guards: having observed
// `v = GetPoly()` it knows v is non-nil, so the false edge of
// `if v != nil { ctx.PutPoly(v) }` is pruned rather than reported.
// Calls that merely receive the buffer as an argument are borrows, not
// transfers — the repo's Into-kernel convention — so an early error
// return between Get and Put is still caught.
package poolbalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"heax/tools/heaxlint/analysis"
	"heax/tools/heaxlint/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolbalance",
	Doc:  "pooled buffers must be Put, returned, or //heax:owns-transferred on every path",
	Run:  run,
}

// Packages lists the import paths whose pools the checker knows.
var Packages = map[string]bool{
	"heax":               true,
	"heax/internal/ring": true,
	"heax/internal/ckks": true,
}

// pairs maps each Get-style method name to the Put that balances it.
var pairs = map[string]string{
	"GetPoly":       "PutPoly",
	"GetPolyNoZero": "PutPoly",
	"NewGroup":      "PutGroup",
	"Get":           "Put",
	"get":           "put",
	"getSlots":      "putSlots",
}

func run(pass *analysis.Pass) (any, error) {
	if !Packages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		dirs := pass.FileDirectives(file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, dirs, fn)
		}
	}
	return nil, nil
}

// a getSite is one pooled acquisition inside a function.
type getSite struct {
	call *ast.CallExpr
	put  string       // balancing Put method name
	obj  types.Object // variable bound to the buffer, if an identifier LHS
	lhs  ast.Expr     // LHS expression when not a plain identifier
}

func checkFunc(pass *analysis.Pass, dirs *analysis.Directives, fn *ast.FuncDecl) {
	sites := collectGets(pass, fn)
	if len(sites) == 0 {
		return
	}
	defers := collectDeferredPuts(pass, fn)
	var graph *cfg.CFG // built lazily: most functions settle on defers

	for _, site := range sites {
		if dirs.Has("owns", site.call.Pos()) {
			continue
		}
		switch {
		case site.obj != nil:
			if defersCover(pass, defers, site.put, func(arg ast.Expr) bool {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				return ok && pass.TypesInfo.Uses[id] == site.obj
			}) {
				continue
			}
			if graph == nil {
				graph = cfg.New(fn.Body)
			}
			checkPaths(pass, graph, site)
		case site.lhs != nil:
			// Stored straight into a field/slot: balanced only by a defer
			// on the syntactically same expression, or //heax:owns.
			want := types.ExprString(site.lhs)
			if defersCover(pass, defers, site.put, func(arg ast.Expr) bool {
				return types.ExprString(ast.Unparen(arg)) == want
			}) {
				continue
			}
			pass.Reportf(site.call.Pos(), "pooled %s stored into %s with no matching defer %s and no //heax:owns", getName(site.call), want, site.put)
		default:
			pass.Reportf(site.call.Pos(), "pooled %s used as a subexpression: bind it to a variable or mark the line //heax:owns", getName(site.call))
		}
	}
}

// collectGets finds pooled acquisitions. A call qualifies when its
// callee name is a known Get and the callee is declared in one of
// Packages (so net/http.Get and friends never match).
func collectGets(pass *analysis.Pass, fn *ast.FuncDecl) []getSite {
	var sites []getSite
	// Map each qualifying call to its binding form by walking statements.
	claimed := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, put := poolGet(pass, rhs)
			if call == nil {
				continue
			}
			claimed[call] = true
			site := getSite{call: call, put: put}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					site.obj = obj
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					site.obj = obj
				}
			} else {
				site.lhs = as.Lhs[i]
			}
			sites = append(sites, site)
		}
		return true
	})
	// Everything else (composite literals, call arguments, returns of a
	// fresh Get) is an unbound use.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, put := poolGet(pass, n)
		if call == nil || claimed[call] {
			return true
		}
		if enclosingReturn(fn, call) {
			return true // `return pool.Get()` transfers ownership by convention
		}
		sites = append(sites, getSite{call: call, put: put})
		return true
	})
	return sites
}

// poolGet reports whether e is a call to a known pool Get declared in
// an allowlisted package, returning the call and its balancing Put.
func poolGet(pass *analysis.Pass, n ast.Node) (*ast.CallExpr, string) {
	e, ok := n.(ast.Expr)
	if !ok {
		return nil, ""
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	var name string
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name, obj = fun.Name, pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		name, obj = fun.Sel.Name, pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil, ""
	}
	put, ok := pairs[name]
	if !ok || obj == nil || obj.Pkg() == nil || !Packages[obj.Pkg().Path()] {
		return nil, ""
	}
	return call, put
}

// enclosingReturn reports whether call appears inside a return
// statement's results.
func enclosingReturn(fn *ast.FuncDecl, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return !found
		}
		for _, r := range ret.Results {
			if containsNode(r, call) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// a deferredPut is one `defer x.Put(arg)` (or a deferred closure whose
// body puts) recorded as the Put name plus the argument expressions it
// releases.
type deferredPut struct {
	put  string
	args []ast.Expr
}

func collectDeferredPuts(pass *analysis.Pass, fn *ast.FuncDecl) []deferredPut {
	var out []deferredPut
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ... ctx.PutPoly(v) ... }()
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, put := putCall(pass, m); call != nil {
					out = append(out, deferredPut{put: put, args: call.Args})
				}
				return true
			})
			return true
		}
		if call, put := putCall(pass, ds.Call); call != nil {
			out = append(out, deferredPut{put: put, args: call.Args})
		}
		return true
	})
	return out
}

// putCall reports whether n is a call to a known pool Put declared in
// an allowlisted package.
func putCall(pass *analysis.Pass, n ast.Node) (*ast.CallExpr, string) {
	var call *ast.CallExpr
	switch n := n.(type) {
	case *ast.CallExpr:
		call = n
	case *ast.ExprStmt:
		c, ok := n.X.(*ast.CallExpr)
		if !ok {
			return nil, ""
		}
		call = c
	default:
		return nil, ""
	}
	var name string
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name, obj = fun.Name, pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		name, obj = fun.Sel.Name, pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil, ""
	}
	if !isPutName(name) || obj == nil || obj.Pkg() == nil || !Packages[obj.Pkg().Path()] {
		return nil, ""
	}
	return call, name
}

func isPutName(name string) bool {
	for _, p := range pairs {
		if p == name {
			return true
		}
	}
	return false
}

func defersCover(pass *analysis.Pass, defers []deferredPut, put string, match func(ast.Expr) bool) bool {
	for _, d := range defers {
		if d.put != put {
			continue
		}
		for _, a := range d.args {
			if match(a) {
				return true
			}
		}
	}
	return false
}

// checkPaths walks the CFG forward from the Get and reports the first
// path that reaches function exit still holding the buffer.
func checkPaths(pass *analysis.Pass, graph *cfg.CFG, site getSite) {
	// Locate the block and node index of the Get's statement.
	startBlock, startIdx := -1, -1
	for bi, blk := range graph.Blocks {
		for ni, n := range blk.Nodes {
			if containsNode(n, site.call) {
				startBlock, startIdx = bi, ni
			}
		}
	}
	if startBlock < 0 {
		return // not reachable in the graph (dead code)
	}

	visited := make(map[*cfg.Block]bool)
	var leak func(blk *cfg.Block, from int) bool
	leak = func(blk *cfg.Block, from int) bool {
		if blk == graph.Exit {
			return true
		}
		if visited[blk] {
			return false
		}
		visited[blk] = true
		for i := from; i < len(blk.Nodes); i++ {
			n := blk.Nodes[i]
			if releases(pass, n, site) {
				return false // balanced on this path
			}
			if transfers(pass, n, site) {
				return false // ownership handed off
			}
		}
		for _, e := range blk.Succs {
			if e.Panic {
				continue // abnormal exit: the recover boundary repools nothing, but neither does the heap care
			}
			if edgeImpossible(pass, e, site.obj) {
				continue // e.g. the `v == nil` arm while v is provably non-nil
			}
			if leak(e.To, 0) {
				return true
			}
		}
		return false
	}
	if leak(graph.Blocks[startBlock], startIdx+1) {
		pass.Reportf(site.call.Pos(), "pooled buffer from %s can reach function exit without %s: add the Put on every path, defer it, or mark the transfer //heax:owns", getName(site.call), site.put)
	}
}

// releases reports whether node n puts site's buffer back: a call
// put(v), or a defer of one (a defer executed on this path covers every
// later exit, so the walk may stop).
func releases(pass *analysis.Pass, n ast.Node, site getSite) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false // a closure body is not this path
		}
		call, put := putCall(pass, m)
		if call == nil || put != site.put {
			return true
		}
		for _, a := range call.Args {
			if usesObj(pass, a, site.obj) {
				found = true
			}
		}
		return true
	})
	if found {
		return true
	}
	if ds, ok := n.(*ast.DeferStmt); ok {
		for _, d := range collectDeferredPutsFrom(pass, ds) {
			if d.put != site.put {
				continue
			}
			for _, a := range d.args {
				if usesObj(pass, a, site.obj) {
					return true
				}
			}
		}
	}
	return false
}

func collectDeferredPutsFrom(pass *analysis.Pass, ds *ast.DeferStmt) []deferredPut {
	var out []deferredPut
	if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, put := putCall(pass, m); call != nil {
				out = append(out, deferredPut{put: put, args: call.Args})
			}
			return true
		})
		return out
	}
	if call, put := putCall(pass, ds.Call); call != nil {
		out = append(out, deferredPut{put: put, args: call.Args})
	}
	return out
}

// transfers reports whether node n hands ownership of the buffer away:
// returning it, or storing it into non-local memory (a field, slice
// slot, map entry, or channel). Passing it as a plain call argument is
// a borrow and does NOT transfer.
func transfers(pass *analysis.Pass, n ast.Node, site getSite) bool {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if usesObj(pass, r, site.obj) {
				return true
			}
		}
	case *ast.SendStmt:
		return usesObj(pass, n.Value, site.obj)
	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			if !usesObj(pass, rhs, site.obj) {
				continue
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true // multi-assign from call: be conservative
			}
			switch ast.Unparen(n.Lhs[i]).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				return true // stored into a field / slot / pointee
			}
		}
	}
	return false
}

// usesObj reports whether expr references site.obj.
func usesObj(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// edgeImpossible prunes branch edges contradicted by the fact that obj
// is non-nil (pool Gets never return nil): the true edge of
// `if v == nil`, the false edge of `if v != nil`.
func edgeImpossible(pass *analysis.Pass, e cfg.Edge, obj types.Object) bool {
	if e.Cond == nil || obj == nil {
		return false
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var other ast.Expr
	switch {
	case isObjIdent(pass, bin.X, obj):
		other = bin.Y
	case isObjIdent(pass, bin.Y, obj):
		other = bin.X
	default:
		return false
	}
	if id, ok := ast.Unparen(other).(*ast.Ident); !ok || id.Name != "nil" {
		return false
	}
	switch bin.Op {
	case token.EQL: // v == nil: false, so the non-negated edge is impossible
		return !e.Negate
	case token.NEQ: // v != nil: true, so the negated edge is impossible
		return e.Negate
	}
	return false
}

func isObjIdent(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

func getName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	}
	return "Get"
}
