package poolbalance_test

import (
	"testing"

	"heax/tools/heaxlint/analysis/analysistest"
	"heax/tools/heaxlint/passes/poolbalance"
)

func TestPoolBalance(t *testing.T) {
	analysistest.Run(t, "testdata", poolbalance.Analyzer, "heax")
}
