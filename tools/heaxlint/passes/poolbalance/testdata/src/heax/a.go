package heax

import "errors"

// Poly and pool mirror the shapes in internal/ring.
type Poly struct{ Coeffs [][]uint64 }

type Context struct{}

func (c *Context) GetPoly(n int) *Poly       { return &Poly{} }
func (c *Context) GetPolyNoZero(n int) *Poly { return &Poly{} }
func (c *Context) PutPoly(p *Poly)           {}

var errBad = errors.New("heax: bad")

// The classic leak: an early error return between Get and Put.
func leaky(ctx *Context, fail bool) error {
	p := ctx.GetPoly(4) // want `can reach function exit without PutPoly`
	if fail {
		return errBad
	}
	ctx.PutPoly(p)
	return nil
}

func deferred(ctx *Context, fail bool) error {
	p := ctx.GetPoly(4)
	defer ctx.PutPoly(p)
	if fail {
		return errBad
	}
	return nil
}

func allPaths(ctx *Context, fail bool) error {
	p := ctx.GetPoly(4)
	if fail {
		ctx.PutPoly(p)
		return errBad
	}
	ctx.PutPoly(p)
	return nil
}

// The nil-guard pattern: the false edge of `b != nil` is impossible
// while b holds a pool buffer, so this balances.
func nilGuarded(ctx *Context, want bool) {
	var b *Poly
	if want {
		b = ctx.GetPolyNoZero(4)
	}
	if b != nil {
		ctx.PutPoly(b)
	}
}

// Returning the buffer transfers ownership to the caller.
func transferByReturn(ctx *Context) *Poly {
	p := ctx.GetPoly(4)
	return p
}

type holder struct{ p *Poly }

// Storing into a field is a transfer (the holder now owns it).
func transferByStore(ctx *Context, h *holder) {
	p := ctx.GetPoly(4)
	h.p = p
}

// A direct field store needs a matching defer or //heax:owns.
func storeUnbalanced(ctx *Context, h *holder) {
	h.p = ctx.GetPoly(4) // want `stored into h.p with no matching defer PutPoly`
}

func storeDeferred(ctx *Context, h *holder) {
	h.p = ctx.GetPoly(4)
	defer ctx.PutPoly(h.p)
}

func storeOwned(ctx *Context, h *holder) {
	//heax:owns the holder releases it
	h.p = ctx.GetPoly(4)
}

// A Get buried in a composite literal is unprovable without //heax:owns.
func subexpression(ctx *Context) {
	h := &holder{p: ctx.GetPoly(4)} // want `used as a subexpression`
	_ = h
}

func subexpressionOwned(ctx *Context) *holder {
	//heax:owns rides in the holder
	return &holder{p: ctx.GetPoly(4)}
}

// Put inside a loop body still covers the path out of the loop.
func loopBalanced(ctx *Context, n int) {
	for i := 0; i < n; i++ {
		p := ctx.GetPolyNoZero(4)
		ctx.PutPoly(p)
	}
}
