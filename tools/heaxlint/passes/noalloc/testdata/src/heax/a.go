package heax

import (
	"errors"
	"fmt"
)

var errRange = errors.New("heax: out of range")

//heax:noalloc
func hotClean(out, a, b []uint64, p uint64) {
	for i := range out {
		out[i] = (a[i] + b[i]) % p
	}
}

//heax:noalloc
func hotMake(n int) {
	buf := make([]uint64, n) // want `make in //heax:noalloc function hotMake allocates`
	_ = buf
}

//heax:noalloc
func hotAppend(s []int, v int) []int {
	return append(s, v) // want `append in //heax:noalloc function hotAppend allocates`
}

type pair struct{ a, b int }

//heax:noalloc
func hotComposite(a, b int) pair {
	return pair{a, b} // want `composite literal in //heax:noalloc function hotComposite`
}

//heax:noalloc
func hotClosure() func() int {
	n := 0
	return func() int { n++; return n } // want `allocates a closure`
}

//heax:noalloc
func hotBoxing(v int) {
	fmt.Println(v) // want `converts concrete int to interface`
}

//heax:noalloc
func hotConcat(a, b string) string {
	return a + b // want `string concatenation`
}

// The cold error path is exempt: a guard that returns a fresh error may
// allocate, because it never runs in steady state.
//
//heax:noalloc
func hotWithGuard(out, a []uint64, n int) error {
	if len(out) < n {
		return fmt.Errorf("heax: need %d slots, have %d: %w", n, len(out), errRange)
	}
	for i := 0; i < n; i++ {
		out[i] = a[i]
	}
	return nil
}

// Unmarked functions may allocate freely.
func coldPath(n int) []uint64 {
	return make([]uint64, n)
}
