package noalloc_test

import (
	"testing"

	"heax/tools/heaxlint/analysis/analysistest"
	"heax/tools/heaxlint/passes/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "heax")
}
