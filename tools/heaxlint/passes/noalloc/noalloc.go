// Package noalloc verifies `//heax:noalloc`-marked hot functions: the
// *Into kernels and the obs fast paths whose zero-allocation
// steady state the benchmarks (TestIntoAllocations,
// TestZeroAllocFastPath) depend on. The runtime tests catch a
// regression only on the inputs they happen to drive; this check
// rejects the allocating constructs themselves, the way escape
// analysis sees them:
//
//   - composite literals and &T{...} (heap allocation when escaping)
//   - make / new / append (growth)
//   - function literals (closure allocation)
//   - conversions of concrete values to interface types, explicit or
//     implicit at call/assign/return boundaries (boxing)
//   - string concatenation and string<->[]byte conversions
//
// Error paths are exempt: constructs inside an if- or case-body that
// ends by returning a freshly built error are the documented cold
// path (kernels report misuse with typed errors, which allocate), and
// never run in steady state.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"heax/tools/heaxlint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "//heax:noalloc-marked functions must not contain allocating constructs outside error paths",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		dirs := pass.FileDirectives(file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !dirs.FuncHas("noalloc", fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	cold := coldBlocks(pass, fn.Body)
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if inColdPath(stack, cold) {
			return true
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			pass.Reportf(n.Pos(), "composite literal in //heax:noalloc function %s may allocate", fn.Name.Name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in //heax:noalloc function %s allocates a closure", fn.Name.Name)
			return false // do not descend: the closure body is not the hot frame
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n.X) {
				pass.Reportf(n.Pos(), "string concatenation in //heax:noalloc function %s allocates", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkCall(pass, fn, n)
		case *ast.ReturnStmt:
			checkReturn(pass, fn, n)
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					checkConvert(pass, fn, n.Rhs[i], pass.TypesInfo.Types[n.Lhs[i]].Type, "assignment")
				}
			}
		}
		return true
	})
}

// checkCall flags the allocating builtins, explicit conversions to
// interface or between string and byte/rune slices, and implicit
// boxing of concrete arguments into interface parameters.
func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make", "new", "append":
			if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Parent() == types.Universe {
				pass.Reportf(call.Pos(), "%s in //heax:noalloc function %s allocates", id.Name, fn.Name.Name)
				return
			}
		}
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		// Explicit conversion T(x).
		if len(call.Args) == 1 {
			checkConvert(pass, fn, call.Args[0], tv.Type, "conversion")
			if isStringByteConv(pass, tv.Type, call.Args[0]) {
				pass.Reportf(call.Pos(), "string<->[]byte conversion in //heax:noalloc function %s copies", fn.Name.Name)
			}
		}
		return
	}
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkConvert(pass, fn, arg, pt, "argument")
	}
}

// checkReturn flags concrete values boxed into interface results.
func checkReturn(pass *analysis.Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fn.Type.Results == nil {
		return
	}
	var results []types.Type
	for _, f := range fn.Type.Results.List {
		t := pass.TypesInfo.Types[f.Type].Type
		n := max(len(f.Names), 1)
		for i := 0; i < n; i++ {
			results = append(results, t)
		}
	}
	if len(ret.Results) != len(results) {
		return // naked return or multi-value call: nothing new converted here
	}
	for i, e := range ret.Results {
		checkConvert(pass, fn, e, results[i], "return")
	}
}

// checkConvert reports when expr (concrete, non-nil) is converted to
// interface type target — the boxing escape analysis turns into a heap
// allocation unless it proves otherwise.
func checkConvert(pass *analysis.Pass, fn *ast.FuncDecl, expr ast.Expr, target types.Type, what string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) {
		return // interface-to-interface: no boxing
	}
	if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(expr.Pos(), "%s converts concrete %s to interface %s in //heax:noalloc function %s (boxing may allocate)", what, tv.Type, target, fn.Name.Name)
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isStringByteConv(pass *analysis.Pass, target types.Type, arg ast.Expr) bool {
	tb, tIsStr := target.Underlying().(*types.Basic)
	at := pass.TypesInfo.Types[arg].Type
	if at == nil {
		return false
	}
	ab, aIsStr := at.Underlying().(*types.Basic)
	toString := tIsStr && tb.Info()&types.IsString != 0
	fromString := aIsStr && ab.Info()&types.IsString != 0
	_, toSlice := target.Underlying().(*types.Slice)
	_, fromSlice := at.Underlying().(*types.Slice)
	return (toString && fromSlice) || (toSlice && fromString)
}

// coldBlocks marks the if- and case-bodies that end by returning a
// freshly constructed error: misuse guards, never the steady-state
// path.
func coldBlocks(pass *analysis.Pass, body *ast.BlockStmt) map[ast.Node]bool {
	cold := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if endsInErrorReturn(pass, n.Body.List) {
				cold[n.Body] = true
			}
		case *ast.CaseClause:
			if endsInErrorReturn(pass, n.Body) {
				cold[n] = true
			}
		}
		return true
	})
	return cold
}

func endsInErrorReturn(pass *analysis.Pass, stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	ret, ok := stmts[len(stmts)-1].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, e := range ret.Results {
		t := pass.TypesInfo.Types[e].Type
		if t == nil {
			continue
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			if id, ok := ast.Unparen(e).(*ast.Ident); !ok || id.Name != "nil" {
				return true
			}
		}
		if types.IsInterface(t) && t.String() == "error" {
			return true
		}
	}
	return false
}

// inColdPath reports whether the innermost enclosing block recorded in
// cold contains the current node.
func inColdPath(stack []ast.Node, cold map[ast.Node]bool) bool {
	for _, n := range stack {
		if cold[n] {
			return true
		}
	}
	return false
}
