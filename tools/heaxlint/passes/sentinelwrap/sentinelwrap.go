// Package sentinelwrap enforces the repository's error discipline
// (PR 3): every error the public packages construct must be branchable
// with errors.Is — built by wrapping a sentinel with fmt.Errorf's %w
// verb (or errors.Join), or by returning a package-level sentinel
// variable directly. Bare in-function errors.New calls and fmt.Errorf
// calls whose constant format has no %w produce errors no caller can
// classify without string matching, which the serving layer's wire
// error codes (serve.errToCode) and every errors.Is site in the tree
// depend on not happening.
//
// Package-level `var ErrX = errors.New(...)` declarations are the
// sentinels themselves and are exempt; so are dynamic format strings
// (the analyzer cannot prove them bare) and _test.go files.
package sentinelwrap

import (
	"go/ast"
	"go/constant"
	"strings"

	"heax/tools/heaxlint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "sentinelwrap",
	Doc:  "errors crossing the public API must wrap a sentinel (%w or errors.Join), never bare fmt.Errorf/errors.New",
	Run:  run,
}

// Packages lists the import paths whose errors cross the public API
// boundary. internal/ packages are deliberately absent: their errors
// reach callers only through the root package, which re-wraps them.
var Packages = map[string]bool{
	"heax":               true,
	"heax/serve":         true,
	"heax/serve/durable": true,
	"heax/obs":           true,
	"heax/circuits":      true,
}

func run(pass *analysis.Pass) (any, error) {
	if !Packages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		// Only function bodies are checked: package-level declarations
		// are where sentinels are born.
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch {
				case isPkgFunc(pass, call, "errors", "New"):
					pass.Reportf(call.Pos(), "in-function errors.New creates an unclassifiable error: hoist it to a package-level sentinel or wrap one with fmt.Errorf(...%%w...)")
				case isPkgFunc(pass, call, "fmt", "Errorf") && len(call.Args) > 0:
					format, known := constFormat(pass, call.Args[0])
					if known && !strings.Contains(format, "%w") {
						pass.Reportf(call.Pos(), "fmt.Errorf without %%w produces an error no errors.Is can classify: wrap a sentinel (e.g. %%w with a package Err... var)")
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// isPkgFunc reports whether call invokes the function pkg.name, using
// type information so renamed imports and shadowed identifiers resolve
// correctly.
func isPkgFunc(pass *analysis.Pass, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkg
}

// constFormat evaluates the format argument if it is a compile-time
// constant (a literal, a constant, or a concatenation of them).
func constFormat(pass *analysis.Pass, arg ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
