package sentinelwrap_test

import (
	"testing"

	"heax/tools/heaxlint/analysis/analysistest"
	"heax/tools/heaxlint/passes/sentinelwrap"
)

func TestSentinelWrap(t *testing.T) {
	analysistest.Run(t, "testdata", sentinelwrap.Analyzer, "heax")
}
