package heax

import (
	"errors"
	"fmt"
)

// Package-level sentinels are where errors.New belongs: exempt.
var ErrThing = errors.New("heax: thing failed")

func bare() error {
	return errors.New("oops") // want `in-function errors.New`
}

func bareFormat(n int) error {
	return fmt.Errorf("heax: bad n %d", n) // want `fmt.Errorf without %w`
}

func wrapped(n int) error {
	return fmt.Errorf("heax: bad n %d: %w", n, ErrThing)
}

const prefix = "heax: "

func constConcat() error {
	return fmt.Errorf(prefix + "assembled constant") // want `fmt.Errorf without %w`
}

func dynamic(format string) error {
	return fmt.Errorf(format, 1) // not provably bare: skipped
}

func joined(a, b error) error {
	return errors.Join(a, b)
}
