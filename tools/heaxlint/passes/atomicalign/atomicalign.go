// Package atomicalign flags 64-bit sync/atomic operations applied to
// struct fields that are not guaranteed 8-byte aligned on 32-bit
// targets (GOARCH=386, arm), where such an operation faults at
// runtime. The fix is either moving the field to the front of the
// struct or, better, using the atomic.Int64/Uint64 wrapper types,
// which carry their own alignment.
package atomicalign

import (
	"go/ast"
	"go/types"

	"heax/tools/heaxlint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicalign",
	Doc:  "64-bit sync/atomic calls on struct fields must be 8-byte aligned on 32-bit targets",
	Run:  run,
}

// ops64 is the set of sync/atomic functions whose first argument is a
// *int64 or *uint64 that the hardware requires aligned.
var ops64 = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// sizes32 models gc's layout on a 32-bit target, where word-sized
// fields are 4-aligned and a 64-bit field can land on a 4-byte
// boundary.
var sizes32 = types.SizesFor("gc", "386")

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !ops64[sel.Sel.Name] {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			checkArg(pass, call.Args[0])
			return true
		})
	}
	return nil, nil
}

// checkArg inspects &x.f arguments: when f's byte offset within its
// struct is not a multiple of 8 under 32-bit layout, the call can
// fault there.
func checkArg(pass *analysis.Pass, arg ast.Expr) {
	unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	// Resolve the field's offset in the innermost struct. Outer structs
	// embedding this one could still misalign it; the innermost offset
	// is what the programmer controls at the reported site.
	recv := selection.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	st, ok := recv.Underlying().(*types.Struct)
	if !ok {
		return
	}
	index := selection.Index()
	// Walk embedded structs along the selection path, accumulating
	// offsets.
	var offset int64
	for depth, fi := range index {
		fields := make([]*types.Var, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			fields[i] = st.Field(i)
		}
		offs := sizes32.Offsetsof(fields)
		offset += offs[fi]
		if depth < len(index)-1 {
			ft := st.Field(fi).Type()
			if ptr, ok := ft.Underlying().(*types.Pointer); ok {
				// An indirection resets alignment to the allocator's
				// 8-byte guarantee for new objects — but only heap
				// objects; be conservative and stop tracking.
				_ = ptr
				return
			}
			var ok bool
			st, ok = ft.Underlying().(*types.Struct)
			if !ok {
				return
			}
		}
	}
	if offset%8 != 0 {
		pass.Reportf(arg.Pos(), "64-bit atomic operation on a field at 32-bit offset %d (not 8-aligned): hoist the field or use atomic.Int64/Uint64", offset)
	}
}
