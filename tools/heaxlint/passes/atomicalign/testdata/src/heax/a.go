package heax

import "sync/atomic"

// misaligned: on GOARCH=386 the uint64 lands at offset 4.
type counters struct {
	flag uint32
	n    uint64
}

func bump(c *counters) {
	atomic.AddUint64(&c.n, 1) // want `not 8-aligned`
}

// hoisting the 64-bit field to the front fixes the layout.
type countersFixed struct {
	n    uint64
	flag uint32
}

func bumpFixed(c *countersFixed) {
	atomic.AddUint64(&c.n, 1)
}

// the wrapper types carry their own alignment: always fine.
type countersModern struct {
	flag uint32
	n    atomic.Uint64
}

func bumpModern(c *countersModern) {
	c.n.Add(1)
}

// 32-bit atomics have no alignment hazard.
func bumpFlag(c *counters) {
	atomic.AddUint32(&c.flag, 1)
}
