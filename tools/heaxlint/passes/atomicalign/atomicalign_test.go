package atomicalign_test

import (
	"testing"

	"heax/tools/heaxlint/analysis/analysistest"
	"heax/tools/heaxlint/passes/atomicalign"
)

func TestAtomicAlign(t *testing.T) {
	analysistest.Run(t, "testdata", atomicalign.Analyzer, "heax")
}
