package rotnorm_test

import (
	"testing"

	"heax/tools/heaxlint/analysis/analysistest"
	"heax/tools/heaxlint/passes/rotnorm"
)

func TestRotNorm(t *testing.T) {
	analysistest.Run(t, "testdata", rotnorm.Analyzer, "heax")
}
