// Package rotnorm enforces the rotation-step normalization invariant
// (PR 5's hardening): Galois rotation keys are stored under steps
// normalized into [0, Slots()) by Params.NormalizeRotation, and every
// lookup must normalize the same way. Indexing the key map with a raw
// step — one straight off the wire, or an un-reduced negative step —
// silently misses the key (a spurious ErrKeyMissing at best, a
// denormalized duplicate entry at worst).
//
// The rule: an index expression into a rotation-key map (any map with
// int keys and *GaloisKey-shaped values, including via the .Rotations
// field) must use a step that provably flowed through
// NormalizeRotation — a direct call, or an identifier every one of
// whose assignments in the enclosing function is such a call. Methods
// declared on the type that owns the map (the GaloisKeySet accessor
// layer) are exempt: they are the chokepoint the rest of the code is
// being forced through.
package rotnorm

import (
	"go/ast"
	"go/types"

	"heax/tools/heaxlint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "rotnorm",
	Doc:  "rotation-step map indexing must flow through Params.NormalizeRotation",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Identifiers sanitized by assignment from a NormalizeRotation call
	// anywhere in this function. (Coarse, but reassigning a normalized
	// step to a raw one in the same function would be its own smell.)
	sanitized := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isNormalizeCall(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					sanitized[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					sanitized[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		mt, ok := pass.TypesInfo.Types[ix.X].Type.Underlying().(*types.Map)
		if !ok || !isRotationKeyMap(mt) {
			return true
		}
		if receiverOwnsMap(pass, fn, ix.X) {
			return true // the accessor layer itself
		}
		if indexSanitized(pass, ix.Index, sanitized) {
			return true
		}
		pass.Reportf(ix.Pos(), "rotation-key map indexed with a step that did not flow through Params.NormalizeRotation")
		return true
	})
}

// isRotationKeyMap matches map[int]*GaloisKey (and map[int]GaloisKey),
// by element type name so the check survives refactors of where the
// map lives.
func isRotationKeyMap(mt *types.Map) bool {
	basic, ok := mt.Key().Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Int {
		return false
	}
	elem := mt.Elem()
	if ptr, ok := elem.(*types.Pointer); ok {
		elem = ptr.Elem()
	}
	named, ok := elem.(*types.Named)
	return ok && named.Obj().Name() == "GaloisKey"
}

// isNormalizeCall matches <anything>.NormalizeRotation(...).
func isNormalizeCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "NormalizeRotation"
}

// indexSanitized reports whether the index expression provably carries
// a normalized step: a NormalizeRotation call, a sanitized identifier,
// or a constant (fixed steps are the key generator's own business).
func indexSanitized(pass *analysis.Pass, index ast.Expr, sanitized map[types.Object]bool) bool {
	index = ast.Unparen(index)
	if isNormalizeCall(index) {
		return true
	}
	if tv, ok := pass.TypesInfo.Types[index]; ok && tv.Value != nil {
		return true // compile-time constant step
	}
	if id, ok := index.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil && sanitized[obj] {
			return true
		}
	}
	return false
}

// receiverOwnsMap reports whether fn is a method whose receiver type
// declares the struct field being indexed (mapExpr is recv.Field or a
// promotion of it) — the accessor layer owning the map.
func receiverOwnsMap(pass *analysis.Pass, fn *ast.FuncDecl, mapExpr ast.Expr) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	sel, ok := ast.Unparen(mapExpr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[base]
	if obj == nil || len(fn.Recv.List[0].Names) == 0 {
		return false
	}
	recvObj := pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
	return recvObj != nil && obj == recvObj
}
