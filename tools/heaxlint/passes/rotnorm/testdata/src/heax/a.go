package heax

// GaloisKey and the shapes around it mirror internal/ckks.
type GaloisKey struct{ Elt uint64 }

type GaloisKeySet struct {
	Rotations map[int]*GaloisKey
}

type Params struct{ slots int }

func (p *Params) NormalizeRotation(step int) int {
	s := step % p.slots
	if s < 0 {
		s += p.slots
	}
	return s
}

func lookupRaw(gks *GaloisKeySet, step int) *GaloisKey {
	return gks.Rotations[step] // want `did not flow through Params.NormalizeRotation`
}

func lookupNormalized(p *Params, gks *GaloisKeySet, step int) *GaloisKey {
	return gks.Rotations[p.NormalizeRotation(step)]
}

func lookupViaVar(p *Params, gks *GaloisKeySet, step int) *GaloisKey {
	norm := p.NormalizeRotation(step)
	return gks.Rotations[norm]
}

func lookupConstant(gks *GaloisKeySet) *GaloisKey {
	return gks.Rotations[4] // fixed step: the key generator's business
}

// The accessor layer owning the map is the chokepoint: exempt.
func (g *GaloisKeySet) rotationKey(step int) *GaloisKey {
	return g.Rotations[step]
}
