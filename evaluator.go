package heax

import (
	"fmt"

	"heax/internal/ckks"
)

// EvaluationKeySet bundles the evaluation keys an Evaluator is bound to
// at construction: the relinearization key and the Galois (rotation/
// conjugation) keys. Either field may be nil; operations that need a
// missing key fail with an error wrapping ErrKeyMissing.
type EvaluationKeySet struct {
	Relin  *RelinearizationKey
	Galois *GaloisKeySet
}

// GenEvaluationKeys derives a complete EvaluationKeySet from a secret
// key: the relinearization key plus Galois keys for the given rotation
// steps (and the conjugation key when conjugate is set).
func GenEvaluationKeys(kg *KeyGenerator, sk *SecretKey, steps []int, conjugate bool) *EvaluationKeySet {
	evk := &EvaluationKeySet{Relin: kg.GenRelinearizationKey(sk)}
	if len(steps) > 0 || conjugate {
		evk.Galois = kg.GenGaloisKeySet(sk, steps, conjugate)
	}
	return evk
}

// EvaluatorOption configures an Evaluator at construction.
type EvaluatorOption func(*Evaluator)

// WithWorkers caps the goroutines row-wise work fans out to for this
// evaluator's operations (defaults to GOMAXPROCS; 1 forces serial
// execution). The cap is scoped to this evaluator — it rides on a
// private view of the parameter set's ring context, so other
// evaluators built on the same Params keep their own caps. ShallowCopy
// preserves it.
func WithWorkers(n int) EvaluatorOption {
	return func(e *Evaluator) { e.inner.SetWorkers(n) }
}

// WithScratchPool pre-warms the ring context's polynomial buffer pool
// with n full-basis polynomials, so even the first operations after
// construction draw scratch from the pool instead of allocating.
func WithScratchPool(n int) EvaluatorOption {
	return func(e *Evaluator) {
		ctx := e.params.RingQP
		polys := make([]*Poly, 0, n)
		for i := 0; i < n; i++ {
			polys = append(polys, ctx.NewPoly(ctx.K()))
		}
		for _, p := range polys {
			ctx.PutPoly(p)
		}
	}
}

// Evaluator runs the server-side homomorphic operations — exactly the
// set HEAX accelerates — against evaluation keys bound at construction.
// It is safe for concurrent use: precomputed state is read-only after
// construction and per-call state lives in pooled scratch. ShallowCopy
// gives each goroutine an evaluator with its own per-call pools while
// sharing all read-only tables.
type Evaluator struct {
	params *Params
	keys   *EvaluationKeySet
	inner  *ckks.Evaluator
}

// NewEvaluator builds an evaluator for params bound to evk. evk may be
// nil for an evaluator restricted to key-free operations (Add, Mul,
// MulPlain, Rescale, DropLevel).
func NewEvaluator(params *Params, evk *EvaluationKeySet, opts ...EvaluatorOption) *Evaluator {
	if evk == nil {
		evk = &EvaluationKeySet{}
	}
	e := &Evaluator{params: params, keys: evk, inner: ckks.NewEvaluator(params)}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// ShallowCopy returns an evaluator sharing this one's parameters and
// bound keys but owning fresh per-call state — one per goroutine is the
// fan-out idiom, though a single Evaluator is itself safe to share.
func (e *Evaluator) ShallowCopy() *Evaluator {
	return &Evaluator{params: e.params, keys: e.keys, inner: e.inner.ShallowCopy()}
}

// Params returns the parameter set the evaluator is built on.
func (e *Evaluator) Params() *Params { return e.params }

// Keys returns the bound evaluation key set.
func (e *Evaluator) Keys() *EvaluationKeySet { return e.keys }

// Workers returns the evaluator's effective worker cap (GOMAXPROCS by
// default, or the WithWorkers value).
func (e *Evaluator) Workers() int { return e.inner.Workers() }

func (e *Evaluator) relin() (*RelinearizationKey, error) {
	if e.keys.Relin == nil {
		return nil, fmt.Errorf("heax: evaluator has no relinearization key bound: %w", ErrKeyMissing)
	}
	return e.keys.Relin, nil
}

// Add returns ct0 + ct1.
func (e *Evaluator) Add(ct0, ct1 *Ciphertext) (*Ciphertext, error) { return e.inner.Add(ct0, ct1) }

// Sub returns ct0 - ct1.
func (e *Evaluator) Sub(ct0, ct1 *Ciphertext) (*Ciphertext, error) { return e.inner.Sub(ct0, ct1) }

// AddPlain returns ct + pt.
func (e *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	return e.inner.AddPlain(ct, pt)
}

// MulPlain returns ct ⊙ pt (the C-P mode of the HEAX MULT module).
func (e *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	return e.inner.MulPlain(ct, pt)
}

// Mul returns the degree-2 product of two degree-1 ciphertexts
// (Algorithm 5). Relinearize with Relinearize, or use MulRelin for the
// fused composite.
func (e *Evaluator) Mul(ct0, ct1 *Ciphertext) (*Ciphertext, error) { return e.inner.Mul(ct0, ct1) }

// Relinearize transforms a degree-2 ciphertext back to degree 1 using
// the bound relinearization key.
func (e *Evaluator) Relinearize(ct *Ciphertext) (*Ciphertext, error) {
	rlk, err := e.relin()
	if err != nil {
		return nil, err
	}
	return e.inner.Relinearize(ct, rlk)
}

// MulRelin is Mul followed by Relinearize — the paper's MULT+ReLin
// composite of Table 8 — fused end-to-end on pooled scratch.
func (e *Evaluator) MulRelin(ct0, ct1 *Ciphertext) (*Ciphertext, error) {
	rlk, err := e.relin()
	if err != nil {
		return nil, err
	}
	return e.inner.MulRelin(ct0, ct1, rlk)
}

// Rescale divides the ciphertext by its current last prime and drops one
// level (Algorithm 6 with rounding).
func (e *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) { return e.inner.Rescale(ct) }

// DropLevel truncates a ciphertext to the given level without scaling.
func (e *Evaluator) DropLevel(ct *Ciphertext, level int) (*Ciphertext, error) {
	return e.inner.DropLevel(ct, level)
}

// RotateLeft rotates message slots left by step positions using the
// bound Galois keys.
func (e *Evaluator) RotateLeft(ct *Ciphertext, step int) (*Ciphertext, error) {
	return e.inner.RotateLeft(ct, step, e.keys.Galois)
}

// RotateRight is RotateLeft with a negated step.
func (e *Evaluator) RotateRight(ct *Ciphertext, step int) (*Ciphertext, error) {
	return e.inner.RotateRight(ct, step, e.keys.Galois)
}

// ConjugateSlots applies complex conjugation to every slot.
func (e *Evaluator) ConjugateSlots(ct *Ciphertext) (*Ciphertext, error) {
	return e.inner.ConjugateSlots(ct, e.keys.Galois)
}

// InnerSum replaces every slot of ct with the sum of n2 consecutive
// slots, using log2(n2) rotations with the bound Galois keys.
func (e *Evaluator) InnerSum(ct *Ciphertext, n2 int) (*Ciphertext, error) {
	return e.inner.InnerSum(ct, n2, e.keys.Galois)
}

// SwitchKeys re-encrypts a degree-1 ciphertext under a different secret
// key. The switching key is an explicit argument — re-keying targets a
// key outside the bound evaluation set by definition.
func (e *Evaluator) SwitchKeys(ct *Ciphertext, swk *SwitchingKey) (*Ciphertext, error) {
	return e.inner.SwitchKeys(ct, swk)
}

// KeySwitchPoly runs Algorithm 7 — the computation the HEAX KeySwitch
// module implements — on a single NTT-form polynomial, returning the
// pair (c0', c1') with c0' + c1'·s ≈ c·s'. Exported so hardware-vs-
// software comparisons can target exactly this kernel.
func (e *Evaluator) KeySwitchPoly(c *Poly, swk *SwitchingKey) (*Poly, *Poly) {
	return e.inner.KeySwitchPoly(c, swk)
}

// In-place variants: results land in a caller-owned ciphertext (see
// NewCiphertext), and all intermediates come from pooled scratch, so a
// steady-state serving loop allocates nothing. Outputs may alias an
// input when the shapes already match.

// AddInto computes ct0 + ct1 into out.
func (e *Evaluator) AddInto(ct0, ct1, out *Ciphertext) error { return e.inner.AddInto(ct0, ct1, out) }

// SubInto computes ct0 - ct1 into out.
func (e *Evaluator) SubInto(ct0, ct1, out *Ciphertext) error { return e.inner.SubInto(ct0, ct1, out) }

// MulPlainInto computes ct ⊙ pt into out.
func (e *Evaluator) MulPlainInto(ct *Ciphertext, pt *Plaintext, out *Ciphertext) error {
	return e.inner.MulPlainInto(ct, pt, out)
}

// AddPlainInto computes ct + pt into out.
func (e *Evaluator) AddPlainInto(ct *Ciphertext, pt *Plaintext, out *Ciphertext) error {
	return e.inner.AddPlainInto(ct, pt, out)
}

// MulRelinInto computes the relinearized product of ct0 and ct1 into
// out using the bound relinearization key.
func (e *Evaluator) MulRelinInto(ct0, ct1, out *Ciphertext) error {
	rlk, err := e.relin()
	if err != nil {
		return err
	}
	return e.inner.MulRelinInto(ct0, ct1, rlk, out)
}

// RescaleInto rescales ct into out, dropping one level.
func (e *Evaluator) RescaleInto(ct, out *Ciphertext) error { return e.inner.RescaleInto(ct, out) }

// RotateInto rotates message slots left by step positions into out
// using the bound Galois keys.
func (e *Evaluator) RotateInto(ct *Ciphertext, step int, out *Ciphertext) error {
	if e.keys.Galois == nil {
		return fmt.Errorf("heax: evaluator has no Galois keys bound: %w", ErrKeyMissing)
	}
	return e.inner.RotateLeftInto(ct, step, e.keys.Galois, out)
}

// ConjugateSlotsInto applies complex conjugation to every slot, into
// out, using the bound conjugation key.
func (e *Evaluator) ConjugateSlotsInto(ct, out *Ciphertext) error {
	return e.inner.ConjugateSlotsInto(ct, e.keys.Galois, out)
}

// InnerSumInto replaces every slot of ct with the sum of n2 consecutive
// slots, into out, with the per-round rotations on pooled scratch.
func (e *Evaluator) InnerSumInto(ct *Ciphertext, n2 int, out *Ciphertext) error {
	if e.keys.Galois == nil {
		return fmt.Errorf("heax: evaluator has no Galois keys bound: %w", ErrKeyMissing)
	}
	return e.inner.InnerSumInto(ct, n2, e.keys.Galois, out)
}

// RotateHoisted rotates ct by every step in steps, paying the expensive
// decomposition half of the key switch once for the whole batch
// (Halevi–Shoup hoisting). The result map is keyed by step.
func (e *Evaluator) RotateHoisted(ct *Ciphertext, steps []int) (map[int]*Ciphertext, error) {
	if e.keys.Galois == nil && len(steps) > 0 {
		return nil, fmt.Errorf("heax: evaluator has no Galois keys bound: %w", ErrKeyMissing)
	}
	return e.inner.RotateHoisted(ct, steps, e.keys.Galois)
}

// RotateHoistedInto is RotateHoisted landing in caller-owned outputs,
// outs[i] receiving the rotation by steps[i]; outputs must not alias
// the input.
func (e *Evaluator) RotateHoistedInto(ct *Ciphertext, steps []int, outs []*Ciphertext) error {
	if e.keys.Galois == nil && len(steps) > 0 {
		return fmt.Errorf("heax: evaluator has no Galois keys bound: %w", ErrKeyMissing)
	}
	return e.inner.RotateHoistedInto(ct, steps, e.keys.Galois, outs)
}
