//go:build race

package heax_test

// raceEnabled reports whether the race detector is on: sync.Pool
// deliberately drops items at random under -race, so allocation-count
// assertions are not meaningful there.
const raceEnabled = true
