// Package obs is the fleet observability substrate: a dependency-free
// metrics registry with Prometheus text-format exposition.
//
// The package exists so every layer of the serving stack — admission
// queues, plan caches, key registries, plan executors — can publish
// the host-side signals that determine sustained FHE throughput (queue
// depth, cache hit rate, ns/op per circuit, per-step-kind latency)
// without pulling a client library into the module. Everything is
// stdlib-only.
//
// Three instrument kinds cover the serving stack:
//
//   - Counter: a monotonically increasing event count. The increment
//     is one atomic add — zero allocations, safe on the hottest path.
//   - Gauge: a float64 that goes up and down (queue depth, bytes).
//   - Histogram: observations bucketed under fixed upper bounds
//     chosen at registration; Observe is a bounds scan plus two
//     atomic operations, zero allocations.
//
// Each instrument exists either as a bare scalar (NewCounter, ...) or
// as a labeled family (NewCounterVec, ...) whose With(values...)
// returns the child for one label combination. With caches children,
// but the call itself allocates its variadic slice — hot paths should
// look the child up once and hold the pointer, which makes every
// subsequent increment allocation-free.
//
// Registration happens at startup and panics on programmer error
// (duplicate or invalid names, label arity mismatches), mirroring the
// Prometheus client convention; the steady-state read and write paths
// never panic and never allocate.
//
// Exposition (Registry.WriteTo, Registry.Handler) renders the
// Prometheus text format deterministically: families sorted by name,
// children sorted by label values, HELP/TYPE lines first, label
// values escaped. Scrapes may run concurrently with increments; a
// histogram's +Inf bucket and _count line are always consistent with
// each other.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. Inc and Add are
// single atomic operations: zero allocations, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//heax:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//heax:noalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down. Set is one atomic store;
// Add is a compare-and-swap loop. Both are allocation-free.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
//
//heax:noalloc
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (negative deltas decrement).
//
//heax:noalloc
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat adds v to a float64 stored as bits, atomically.
//
//heax:noalloc
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Histogram buckets observations under fixed upper bounds (inclusive,
// as Prometheus "le"). Observe scans the bounds — a handful of
// predictable branches — and lands two atomic operations: zero
// allocations on the hot path, safe for concurrent use.
type Histogram struct {
	bounds []float64
	// counts[i] is the number of observations in (bounds[i-1],
	// bounds[i]]; the final extra slot is the +Inf overflow bucket.
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
//
//heax:noalloc
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start, each factor times the previous — the usual latency ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		//heax:allowpanic constructor/registration misuse, caught at startup
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// LinearBuckets returns n upper bounds starting at start, stepping by
// width.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		//heax:allowpanic constructor/registration misuse, caught at startup
		panic("obs: LinearBuckets wants width > 0, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start += width
	}
	return b
}

// metricType tags a family's instrument kind.
type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one label combination's instrument within a family;
// exactly one of c/g/h is non-nil, matching the family type.
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name: its metadata plus every labeled child
// (an unlabeled scalar is the single child with no label values).
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64      // histograms only
	fn      func() float64 // callback gauges only

	mu       sync.Mutex
	children map[string]*child
}

// childKey builds an unambiguous map key from label values
// (length-prefixed, so no separator can collide with a value).
func childKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	var b strings.Builder
	for _, v := range values {
		fmt.Fprintf(&b, "%d:", len(v))
		b.WriteString(v)
	}
	return b.String()
}

// with returns (creating on first use) the child for one label
// combination. Callers on hot paths hold the returned instrument.
func (f *family) with(values []string) *child {
	if len(values) != len(f.labels) {
		//heax:allowpanic constructor/registration misuse, caught at startup
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{values: append([]string(nil), values...)}
		switch f.typ {
		case typeCounter:
			ch.c = &Counter{}
		case typeGauge:
			ch.g = &Gauge{}
		case typeHistogram:
			ch.h = newHistogram(f.buckets)
		}
		f.children[key] = ch
	}
	return ch
}

// delete drops one label combination's child.
func (f *family) delete(values []string) {
	f.mu.Lock()
	delete(f.children, childKey(values))
	f.mu.Unlock()
}

// snapshot returns the children sorted by label values, for
// deterministic exposition.
func (f *family) snapshot() []*child {
	f.mu.Lock()
	kids := make([]*child, 0, len(f.children))
	for _, ch := range f.children {
		kids = append(kids, ch)
	}
	f.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool {
		a, b := kids[i].values, kids[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return kids
}

// CounterVec is a counter family labeled by a fixed set of label
// names.
type CounterVec struct{ f *family }

// With returns the counter for one label-value combination, creating
// it on first use. Hot paths should cache the returned *Counter: the
// child lookup locks and the variadic call allocates, but increments
// on the held pointer are allocation-free.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values).c }

// Delete drops one label combination (bounding label cardinality when
// a tenant or plan goes away). A held child pointer stays usable but
// is no longer exposed.
func (v *CounterVec) Delete(values ...string) { v.f.delete(values) }

// GaugeVec is a gauge family labeled by a fixed set of label names.
type GaugeVec struct{ f *family }

// With returns the gauge for one label-value combination (see
// CounterVec.With for the caching contract).
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values).g }

// Delete drops one label combination.
func (v *GaugeVec) Delete(values ...string) { v.f.delete(values) }

// HistogramVec is a histogram family labeled by a fixed set of label
// names; every child shares the family's bucket bounds.
type HistogramVec struct{ f *family }

// With returns the histogram for one label-value combination (see
// CounterVec.With for the caching contract).
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values).h }

// Delete drops one label combination.
func (v *HistogramVec) Delete(values ...string) { v.f.delete(values) }

// Registry holds metric families and renders them in the Prometheus
// text format. All methods are safe for concurrent use. Registration
// panics on programmer error (invalid or duplicate names, bad
// buckets); the increment and exposition paths never do.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and installs a family, panicking on duplicates —
// a second registration of the same name is a wiring bug, caught at
// startup.
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		//heax:allowpanic constructor/registration misuse, caught at startup
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validLabel(l) {
			//heax:allowpanic constructor/registration misuse, caught at startup
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", f.name, l))
		}
	}
	f.children = make(map[string]*child)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[f.name]; ok {
		//heax:allowpanic constructor/registration misuse, caught at startup
		panic(fmt.Sprintf("obs: metric %s registered twice", f.name))
	}
	r.families[f.name] = f
}

// NewCounter registers and returns an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := &family{name: name, help: help, typ: typeCounter}
	r.register(f)
	return f.with(nil).c
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, typ: typeCounter, labels: labels}
	r.register(f)
	return &CounterVec{f: f}
}

// NewGauge registers and returns an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := &family{name: name, help: help, typ: typeGauge}
	r.register(f)
	return f.with(nil).g
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, typ: typeGauge, labels: labels}
	r.register(f)
	return &GaugeVec{f: f}
}

// NewGaugeFunc registers a callback gauge: fn is invoked at exposition
// time, so a component can expose a value it already maintains under
// its own lock (registry size, queue occupancy) without mirroring it.
// fn must not call back into this registry.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	if fn == nil {
		//heax:allowpanic constructor/registration misuse, caught at startup
		panic(fmt.Sprintf("obs: metric %s: nil gauge func", name))
	}
	r.register(&family{name: name, help: help, typ: typeGauge, fn: fn})
}

// NewHistogram registers and returns an unlabeled histogram with the
// given upper bounds (strictly increasing, finite; a trailing +Inf is
// implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := &family{name: name, help: help, typ: typeHistogram, buckets: checkBuckets(name, buckets)}
	r.register(f)
	return f.with(nil).h
}

// NewHistogramVec registers a histogram family with the given bounds
// and label names.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := &family{name: name, help: help, typ: typeHistogram, buckets: checkBuckets(name, buckets), labels: labels}
	r.register(f)
	return &HistogramVec{f: f}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		//heax:allowpanic constructor/registration misuse, caught at startup
		panic(fmt.Sprintf("obs: metric %s: empty bucket list", name))
	}
	out := append([]float64(nil), buckets...)
	// A caller-supplied trailing +Inf is the implicit overflow bucket.
	if math.IsInf(out[len(out)-1], 1) {
		out = out[:len(out)-1]
	}
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			//heax:allowpanic constructor/registration misuse, caught at startup
			panic(fmt.Sprintf("obs: metric %s: bucket %d is not finite", name, i))
		}
		if i > 0 && out[i-1] >= b {
			//heax:allowpanic constructor/registration misuse, caught at startup
			panic(fmt.Sprintf("obs: metric %s: buckets must be strictly increasing", name))
		}
	}
	if len(out) == 0 {
		//heax:allowpanic constructor/registration misuse, caught at startup
		panic(fmt.Sprintf("obs: metric %s: empty bucket list", name))
	}
	return out
}

// validName reports whether s is a legal metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabel reports whether s is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
