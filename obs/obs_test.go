package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text output: HELP and
// TYPE lines, deterministic family ordering (sorted by name), children
// sorted by label values, label-value escaping, histogram bucket
// ladder with +Inf == _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	// Registered out of name order on purpose: exposition must sort.
	runs := r.NewCounterVec("zz_runs_total", "Completed runs.", "tenant")
	runs.With("bob").Add(2)
	runs.With("alice").Inc()
	runs.With(`we"ird\te
nant`).Inc()
	g := r.NewGauge("aa_depth", "Queue depth.\nSecond line \\ with backslash.")
	g.Set(3.5)
	h := r.NewHistogram("mm_latency_seconds", "Run latency.", []float64{0.25, 0.5, 1})
	h.Observe(0.25) // le is inclusive: lands in the 0.25 bucket
	h.Observe(0.3)
	h.Observe(99) // overflow -> +Inf only
	r.NewGaugeFunc("nn_uptime", "Callback gauge.", func() float64 { return 7 })

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_depth Queue depth.\nSecond line \\ with backslash.
# TYPE aa_depth gauge
aa_depth 3.5
# HELP mm_latency_seconds Run latency.
# TYPE mm_latency_seconds histogram
mm_latency_seconds_bucket{le="0.25"} 1
mm_latency_seconds_bucket{le="0.5"} 2
mm_latency_seconds_bucket{le="1"} 2
mm_latency_seconds_bucket{le="+Inf"} 3
mm_latency_seconds_sum 99.55
mm_latency_seconds_count 3
# HELP nn_uptime Callback gauge.
# TYPE nn_uptime gauge
nn_uptime 7
# HELP zz_runs_total Completed runs.
# TYPE zz_runs_total counter
zz_runs_total{tenant="alice"} 1
zz_runs_total{tenant="bob"} 2
zz_runs_total{tenant="we\"ird\\te\nnant"} 1
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramVecLabels: children share bounds, sort across multiple
// labels, and Delete drops a combination from the exposition.
func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("run_seconds", "Per-run latency.", []float64{1}, "tenant", "plan")
	v.With("t", "b").Observe(0.5)
	v.With("t", "a").Observe(2)
	var buf bytes.Buffer
	r.WriteTo(&buf)
	out := buf.String()
	ai := strings.Index(out, `plan="a"`)
	bi := strings.Index(out, `plan="b"`)
	if ai < 0 || bi < 0 || ai > bi {
		t.Fatalf("children out of order or missing:\n%s", out)
	}
	v.Delete("t", "a")
	buf.Reset()
	r.WriteTo(&buf)
	if strings.Contains(buf.String(), `plan="a"`) {
		t.Fatalf("deleted child still exposed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `plan="b"`) {
		t.Fatal("surviving child vanished with the deleted one")
	}
}

// TestZeroAllocFastPath pins the zero-allocation contract of every hot
// increment: counters, gauges, histograms, and increments on a cached
// vec child.
func TestZeroAllocFastPath(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", ExpBuckets(0.001, 2, 16))
	cv := r.NewCounterVec("cv_total", "", "tenant")
	cached := cv.With("alice")
	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"Gauge.Set":         func() { g.Set(4.2) },
		"Gauge.Add":         func() { g.Add(-1) },
		"Histogram.Observe": func() { h.Observe(0.017) },
		"cached child Inc":  func() { cached.Inc() },
	} {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s allocates %v per op, want 0", name, allocs)
		}
	}
}

// TestConcurrentExposition hammers increments from many goroutines
// while scraping mid-load (run under -race in CI): every scrape must
// stay parseable with a monotonic bucket ladder and +Inf == _count,
// and the final totals must be exact.
func TestConcurrentExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("hits_total", "")
	h := r.NewHistogram("lat_seconds", "", []float64{0.001, 0.01, 0.1})
	cv := r.NewCounterVec("runs_total", "", "tenant")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	wg.Add(workers + 1)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			mine := cv.With(fmt.Sprintf("tenant-%d", w%4))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				mine.Inc()
				h.Observe(float64(i%200) / 1000)
			}
		}(w)
	}
	scrapes := 0
	go func() {
		defer wg.Done()
		for c.Value() < workers*perWorker/2 {
			var buf bytes.Buffer
			if _, err := r.WriteTo(&buf); err != nil {
				t.Error(err)
				return
			}
			checkScrape(t, buf.Bytes())
			scrapes++
		}
	}()
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("lost increments: %d of %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("lost observations: %d of %d", h.Count(), workers*perWorker)
	}
	if scrapes == 0 {
		t.Fatal("the scraper never ran mid-load")
	}
}

// checkScrape asserts structural invariants of one mid-load scrape:
// every line is HELP/TYPE or name{...} value, bucket ladders are
// monotonic, and the +Inf bucket equals the _count sample.
func checkScrape(t *testing.T, scrape []byte) {
	t.Helper()
	var lastBucket, lastCum uint64
	sc := bufio.NewScanner(bytes.NewReader(scrape))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			lastCum = 0
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable line %q", line)
		}
		n, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		switch {
		case strings.Contains(name, "_bucket"):
			cum := uint64(n)
			if cum < lastCum {
				t.Fatalf("bucket ladder not monotonic at %q", line)
			}
			lastCum = cum
			if strings.Contains(name, `le="+Inf"`) {
				lastBucket = cum
				lastCum = 0
			}
		case strings.Contains(name, "_count"):
			if uint64(n) != lastBucket {
				t.Fatalf("_count %d != +Inf bucket %d", uint64(n), lastBucket)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistrationPanics: duplicate names, invalid names, label
// mismatches and bad buckets are startup bugs and must panic loudly.
func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	mustPanic("duplicate name", func() { r.NewGauge("dup_total", "") })
	mustPanic("invalid name", func() { r.NewCounter("9starts_with_digit", "") })
	mustPanic("invalid label", func() { r.NewCounterVec("ok_total", "", "bad-label") })
	mustPanic("empty buckets", func() { r.NewHistogram("h1", "", nil) })
	mustPanic("unsorted buckets", func() { r.NewHistogram("h2", "", []float64{2, 1}) })
	mustPanic("nil gauge func", func() { r.NewGaugeFunc("f1", "", nil) })
	v := r.NewCounterVec("labeled_total", "", "a", "b")
	mustPanic("label arity", func() { v.With("only-one") })
}

// TestBucketHelpers pins the ladder generators and the inclusive
// upper-bound rule.
func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !equalF(exp, want) {
		t.Fatalf("ExpBuckets = %v, want %v", exp, want)
	}
	lin := LinearBuckets(10, 5, 3)
	if want := []float64{10, 15, 20}; !equalF(lin, want) {
		t.Fatalf("LinearBuckets = %v, want %v", lin, want)
	}
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "", []float64{1, 2})
	h.Observe(1) // exactly on a bound: inclusive
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("observation on the bound landed in bucket 1 (le is inclusive), counts[0]=%d", got)
	}
	// A trailing +Inf from the caller is the implicit overflow bucket.
	h2 := r.NewHistogram("h2_seconds", "", append(ExpBuckets(1, 2, 2), inf()))
	if len(h2.bounds) != 2 {
		t.Fatalf("trailing +Inf not stripped: bounds %v", h2.bounds)
	}
}

func inf() float64 { return math.Inf(1) }

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
