package obs

// Prometheus text-format exposition (version 0.0.4). The rendering is
// deterministic — families sorted by name, children by label values —
// so the output is pinnable in golden tests and diffs cleanly between
// scrapes.

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteTo renders every registered family in the Prometheus text
// format. It is safe to call while instruments are being updated: each
// value is read atomically, and a histogram's +Inf bucket always
// equals its _count line (both come from one snapshot of the bucket
// counts).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b bytes.Buffer
	for _, f := range fams {
		renderFamily(&b, f)
	}
	n, err := w.Write(b.Bytes())
	return int64(n), err
}

// Handler returns an http.Handler serving the text exposition — mount
// it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

func renderFamily(b *bytes.Buffer, f *family) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.typ.String())
	b.WriteByte('\n')

	if f.fn != nil {
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(formatFloat(f.fn()))
		b.WriteByte('\n')
		return
	}
	for _, ch := range f.snapshot() {
		switch f.typ {
		case typeCounter:
			writeSample(b, f.name, "", f.labels, ch.values, "", "", strconv.FormatUint(ch.c.Value(), 10))
		case typeGauge:
			writeSample(b, f.name, "", f.labels, ch.values, "", "", formatFloat(ch.g.Value()))
		case typeHistogram:
			renderHistogram(b, f, ch)
		}
	}
}

func renderHistogram(b *bytes.Buffer, f *family, ch *child) {
	h := ch.h
	// One snapshot of the bucket counts keeps the cumulative ladder
	// monotonic and the +Inf bucket equal to _count even mid-load.
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		writeSample(b, f.name, "_bucket", f.labels, ch.values, "le", formatFloat(bound), strconv.FormatUint(cum, 10))
	}
	cum += counts[len(h.bounds)]
	writeSample(b, f.name, "_bucket", f.labels, ch.values, "le", "+Inf", strconv.FormatUint(cum, 10))
	writeSample(b, f.name, "_sum", f.labels, ch.values, "", "", formatFloat(h.Sum()))
	writeSample(b, f.name, "_count", f.labels, ch.values, "", "", strconv.FormatUint(cum, 10))
}

// writeSample renders one line: name[suffix]{labels...[,extraK="extraV"]} value.
func writeSample(b *bytes.Buffer, name, suffix string, labels, values []string, extraK, extraV, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || extraK != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraK != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraK)
			b.WriteString(`="`)
			b.WriteString(extraV)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// formatFloat renders a float64 the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp escapes a HELP line: backslash and newline.
func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
