package heax_test

// Compiled-plan benchmarks: compile latency, single-run latency on the
// logistic example circuit, and — the acceptance metric of the circuit
// API — RunBatch throughput on the same per-op workload as the
// imperative Session_SubmitMulRelin baseline (both report ns per
// MulRelin, so the two benches compare directly in BENCH_4.json).

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"heax"
)

func mulRelinPlan(b *testing.B, k *apiBenchKit) *heax.Plan {
	b.Helper()
	c := heax.NewCircuit()
	c.Output("z", c.MulRelin(c.Input("x"), c.Input("y")))
	plan, err := c.Compile(k.params, k.eval.Keys())
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

func BenchmarkPlanBatch_MulRelin(b *testing.B) {
	for _, spec := range heax.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			k := getAPIBenchKit(b, spec)
			plan := mulRelinPlan(b, k)
			in := map[string]*heax.Ciphertext{"x": k.x, "y": k.y}
			const window = 64
			batch := make([]map[string]*heax.Ciphertext, window)
			for i := range batch {
				batch[i] = in
			}
			b.ResetTimer()
			for done := 0; done < b.N; done += window {
				n := min(window, b.N-done)
				if _, err := plan.RunBatch(batch[:n]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlan_RunMulRelin is the single-run (latency) shape of the
// same workload.
func BenchmarkPlan_RunMulRelin(b *testing.B) {
	for _, spec := range heax.StandardSets {
		b.Run(spec.Name, func(b *testing.B) {
			k := getAPIBenchKit(b, spec)
			plan := mulRelinPlan(b, k)
			in := map[string]*heax.Ciphertext{"x": k.x, "y": k.y}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The logistic example circuit end to end: 8 feature inputs, the full
// degree-3 sigmoid dataflow, 27 compiled steps.

type logisticBenchKit struct {
	params *heax.Params
	plan   *heax.Plan
	in     map[string]*heax.Ciphertext
}

var (
	logisticBenchMu   sync.Mutex
	logisticBenchKit_ *logisticBenchKit
)

func getLogisticBenchKit(b *testing.B) *logisticBenchKit {
	b.Helper()
	logisticBenchMu.Lock()
	defer logisticBenchMu.Unlock()
	if logisticBenchKit_ != nil {
		return logisticBenchKit_
	}
	params, err := heax.NewParams(heax.SetB)
	if err != nil {
		b.Fatal(err)
	}
	kg := heax.NewKeyGenerator(params, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	evk := &heax.EvaluationKeySet{Relin: kg.GenRelinearizationKey(sk)}
	enc := heax.NewEncoder(params)
	encryptor := heax.NewEncryptor(params, pk, 2)
	rng := rand.New(rand.NewSource(6))

	const features = 8
	c := heax.NewCircuit()
	var t heax.Node
	for j := 0; j < features; j++ {
		term := c.MulConst(c.Input(fmt.Sprintf("x%d", j)), rng.Float64()*2-1)
		if j == 0 {
			t = term
		} else {
			t = c.Add(t, term)
		}
	}
	t = c.AddConst(t, 0.25)
	cubic := c.MulRelin(c.MulConst(t, -0.004), c.MulRelin(t, t))
	c.Output("score", c.AddConst(c.Add(cubic, c.MulConst(t, 0.197)), 0.5))
	plan, err := c.Compile(params, evk)
	if err != nil {
		b.Fatal(err)
	}

	in := make(map[string]*heax.Ciphertext, features)
	for j := 0; j < features; j++ {
		vals := make([]float64, 16)
		for i := range vals {
			vals[i] = rng.Float64()*2 - 1
		}
		pt, err := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
		if err != nil {
			b.Fatal(err)
		}
		if in[fmt.Sprintf("x%d", j)], err = encryptor.Encrypt(pt); err != nil {
			b.Fatal(err)
		}
	}
	logisticBenchKit_ = &logisticBenchKit{params: params, plan: plan, in: in}
	return logisticBenchKit_
}

func BenchmarkPlan_CompileLogistic(b *testing.B) {
	k := getLogisticBenchKit(b)
	kg := heax.NewKeyGenerator(k.params, 1)
	sk := kg.GenSecretKey()
	evk := &heax.EvaluationKeySet{Relin: kg.GenRelinearizationKey(sk)}
	rng := rand.New(rand.NewSource(7))
	const features = 8
	c := heax.NewCircuit()
	var t heax.Node
	for j := 0; j < features; j++ {
		term := c.MulConst(c.Input(fmt.Sprintf("x%d", j)), rng.Float64()*2-1)
		if j == 0 {
			t = term
		} else {
			t = c.Add(t, term)
		}
	}
	cubic := c.MulRelin(c.MulConst(t, -0.004), c.MulRelin(t, t))
	c.Output("score", c.AddConst(c.Add(cubic, c.MulConst(t, 0.197)), 0.5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compile(k.params, evk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlan_RunLogistic(b *testing.B) {
	k := getLogisticBenchKit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.plan.Run(k.in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanBatch_Logistic(b *testing.B) {
	k := getLogisticBenchKit(b)
	const window = 8
	batch := make([]map[string]*heax.Ciphertext, window)
	for i := range batch {
		batch[i] = k.in
	}
	b.ResetTimer()
	for done := 0; done < b.N; done += window {
		n := min(window, b.N-done)
		if _, err := k.plan.RunBatch(batch[:n]); err != nil {
			b.Fatal(err)
		}
	}
}
