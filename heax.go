package heax

import (
	"io"

	"heax/internal/ckks"
	"heax/internal/ring"
)

// The scheme types are aliases of the implementation layer, so values
// returned by the public API interoperate with everything the internal
// packages produce (and keep their methods: Params.MaxLevel,
// Ciphertext.Degree, Encoder.Decode, ...).

// Params fixes a CKKS instantiation: ring degree, RNS modulus chain,
// special prime and default scale.
type Params = ckks.Params

// ParamSpec describes a parameter set by bit sizes, as the paper's
// Table 2 does.
type ParamSpec = ckks.ParamSpec

// Ciphertext is an RNS/NTT-form CKKS ciphertext.
type Ciphertext = ckks.Ciphertext

// Plaintext is an encoded (unencrypted) message.
type Plaintext = ckks.Plaintext

// Poly is an RNS polynomial over the parameter basis — the unit the
// HEAX KeySwitch module operates on.
type Poly = ring.Poly

// Key material.
type (
	SecretKey          = ckks.SecretKey
	PublicKey          = ckks.PublicKey
	SwitchingKey       = ckks.SwitchingKey
	RelinearizationKey = ckks.RelinearizationKey
	GaloisKey          = ckks.GaloisKey
	GaloisKeySet       = ckks.GaloisKeySet
	KeyGenerator       = ckks.KeyGenerator
)

// Client-side primitives.
type (
	Encoder   = ckks.Encoder
	Encryptor = ckks.Encryptor
	Decryptor = ckks.Decryptor
)

// The paper's Table 2 parameter sets.
var (
	SetA = ckks.SetA
	SetB = ckks.SetB
	SetC = ckks.SetC
	// StandardSets lists them in order.
	StandardSets = ckks.StandardSets
)

// NewParams realizes a ParamSpec (searches NTT-friendly primes, builds
// ring contexts).
func NewParams(spec ParamSpec) (*Params, error) { return ckks.NewParams(spec) }

// MustParams is NewParams panicking on error, for tests and examples.
func MustParams(spec ParamSpec) *Params { return ckks.MustParams(spec) }

// ParamsFromRaw builds parameters from explicit primes, as a party
// receiving serialized parameters does.
func ParamsFromRaw(logN int, q []uint64, special uint64, logScale int) (*Params, error) {
	return ckks.ParamsFromRaw(logN, q, special, logScale)
}

// NewKeyGenerator creates a deterministic key generator (the seed fixes
// all randomness).
func NewKeyGenerator(params *Params, seed int64) *KeyGenerator {
	return ckks.NewKeyGenerator(params, seed)
}

// NewEncoder builds the canonical-embedding encoder.
func NewEncoder(params *Params) *Encoder { return ckks.NewEncoder(params) }

// NewEncryptor builds a public-key encryptor.
func NewEncryptor(params *Params, pk *PublicKey, seed int64) *Encryptor {
	return ckks.NewEncryptor(params, pk, seed)
}

// NewSymmetricEncryptor builds a secret-key encryptor.
func NewSymmetricEncryptor(params *Params, sk *SecretKey, seed int64) *Encryptor {
	return ckks.NewSymmetricEncryptor(params, sk, seed)
}

// NewDecryptor builds a decryptor.
func NewDecryptor(params *Params, sk *SecretKey) *Decryptor {
	return ckks.NewDecryptor(params, sk)
}

// NewCiphertext allocates a degree-`degree` ciphertext at `level` with
// the given scale, backed at the parameter set's full level so it can be
// reused as an *Into output across levels.
func NewCiphertext(params *Params, degree, level int, scale float64) (*Ciphertext, error) {
	return ckks.NewCiphertext(params, degree, level, scale)
}

// CopyOf returns a deep copy of a ciphertext.
func CopyOf(ct *Ciphertext) *Ciphertext { return ckks.CopyOf(ct) }

// Serialization: the wire format a client and a HEAX-accelerated server
// exchange. Readers validate structure and residue ranges; corrupted
// blobs fail with an error wrapping ErrCorrupt.

func WriteParams(w io.Writer, p *Params) error          { return ckks.WriteParams(w, p) }
func ReadParams(r io.Reader) (*Params, error)           { return ckks.ReadParams(r) }
func WriteCiphertext(w io.Writer, ct *Ciphertext) error { return ckks.WriteCiphertext(w, ct) }
func ReadCiphertext(r io.Reader, params *Params) (*Ciphertext, error) {
	return ckks.ReadCiphertext(r, params)
}
func WriteSecretKey(w io.Writer, sk *SecretKey) error { return ckks.WriteSecretKey(w, sk) }
func ReadSecretKey(r io.Reader, params *Params) (*SecretKey, error) {
	return ckks.ReadSecretKey(r, params)
}
func WritePublicKey(w io.Writer, pk *PublicKey) error { return ckks.WritePublicKey(w, pk) }
func ReadPublicKey(r io.Reader, params *Params) (*PublicKey, error) {
	return ckks.ReadPublicKey(r, params)
}
func WriteRelinearizationKey(w io.Writer, rlk *RelinearizationKey) error {
	return ckks.WriteRelinearizationKey(w, rlk)
}
func ReadRelinearizationKey(r io.Reader, params *Params) (*RelinearizationKey, error) {
	return ckks.ReadRelinearizationKey(r, params)
}
func WriteGaloisKey(w io.Writer, gk *GaloisKey) error { return ckks.WriteGaloisKey(w, gk) }
func ReadGaloisKey(r io.Reader, params *Params) (*GaloisKey, error) {
	return ckks.ReadGaloisKey(r, params)
}

// WriteEvaluationKeySet serializes a complete evaluation key set
// (relinearization plus Galois keys, either may be nil) as one framed,
// length-checked object — the tenant-registration upload of the serving
// wire format.
func WriteEvaluationKeySet(w io.Writer, evk *EvaluationKeySet) error {
	if evk == nil {
		evk = &EvaluationKeySet{}
	}
	return ckks.WriteEvaluationKeys(w, evk.Relin, evk.Galois)
}

// ReadEvaluationKeySet reconstructs a key set written by
// WriteEvaluationKeySet; corrupted or truncated blobs fail with
// ErrCorrupt.
func ReadEvaluationKeySet(r io.Reader, params *Params) (*EvaluationKeySet, error) {
	rlk, gks, err := ckks.ReadEvaluationKeys(r, params)
	if err != nil {
		return nil, err
	}
	return &EvaluationKeySet{Relin: rlk, Galois: gks}, nil
}

// WriteCiphertextBatch serializes a named ciphertext set — one plan
// input (or output) batch — as a single framed object with entries in
// sorted name order.
func WriteCiphertextBatch(w io.Writer, batch map[string]*Ciphertext) error {
	return ckks.WriteCiphertextBatch(w, batch)
}

// ReadCiphertextBatch reconstructs a batch written by
// WriteCiphertextBatch; corrupted or truncated blobs fail with
// ErrCorrupt.
func ReadCiphertextBatch(r io.Reader, params *Params) (map[string]*Ciphertext, error) {
	return ckks.ReadCiphertextBatch(r, params)
}
