#!/usr/bin/env bash
# Run the heaxlint analyzer suite (tools/heaxlint) over the root module.
#
# heaxlint is a separate module so the root stays dependency-free; it
# builds a go vet -vettool compatible multichecker enforcing the
# codebase's pooling, panic, error-wrapping, rotation-normalization,
# and hot-path allocation invariants (see DESIGN.md "Static analysis").
#
#   scripts/lint.sh          # build heaxlint, vet the root module with it
set -euo pipefail
cd "$(dirname "$0")/.."

tool=$(mktemp -t heaxlint.XXXXXX)
trap 'rm -f "$tool"' EXIT

echo "building heaxlint..." >&2
(cd tools/heaxlint && go build -o "$tool" ./cmd/heaxlint)

echo "running heaxlint analyzer tests..." >&2
(cd tools/heaxlint && go test ./...)

echo "vetting root module with heaxlint..." >&2
go vet -vettool="$tool" ./...

# staticcheck lane: run when the binary is present (not vendored here —
# the repo builds offline). Pin the version so local runs and CI agree.
# Install with: go install honnef.co/go/tools/cmd/staticcheck@2023.1.7
if command -v staticcheck >/dev/null 2>&1; then
	echo "running staticcheck..." >&2
	staticcheck ./...
else
	echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2023.1.7)" >&2
fi

echo "lint clean" >&2
