#!/usr/bin/env bash
# Regenerate the golden snapshot of the public API surface (api.txt):
# the full go doc of every public package. CI diffs a fresh generation
# against the committed file, so any change to the exported surface —
# signatures, doc comments, new or removed symbols — must be deliberate
# (rerun this script and commit the result alongside the change).
#
#   scripts/api.sh [out.txt]        # default: api.txt
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-api.txt}
{
	go doc -all heax
	echo
	go doc -all heax/circuits
	echo
	go doc -all heax/obs
	echo
	go doc -all heax/serve
	echo
	go doc -all heax/serve/durable
	echo
	go doc -all heax/arch
	echo
	go doc -all heax/bench
} >"$out"
echo "wrote $out" >&2
