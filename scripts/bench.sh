#!/usr/bin/env bash
# Snapshot the CPU hot-path benchmarks (Tables 7 and 8, lazy and strict,
# single-op latency plus the multi-op key-switch throughput benches at
# GOMAXPROCS), the public-API serving benches (the *Into zero-alloc
# hot path, Session.Submit batch throughput vs direct calls, and the
# compiled-plan Plan_*/PlanBatch_* benches — PlanBatch_MulRelin reports
# ns per MulRelin exactly like Session_SubmitMulRelin, so the two rows
# compare the circuit API's streaming throughput against the imperative
# baseline directly), the wire-serving Serve_* benches (heax/serve
# loopback: Serve_RunBatchMatvec is the full framed round trip per
# input set, Serve_CompileCached the plan-cache hit, Serve_Admission
# the weighted-fair submit→dispatch→done admission path per input set),
# and the circuits-layer benches (Circuits_MatVec: 256×256 BSGS matvec
# per run, one hoisted baby batch; Circuits_ChebyshevEval: degree-3
# Paterson–Stockmeyer polynomial per run) into a JSON file so the perf
# trajectory is tracked across PRs.
#
# The file also records a GOMAXPROCS sweep (1, 2, 4, 8) over the
# parallelism-sensitive throughput benches — the measured baseline the
# multi-core roadmap item scales against.
#
#   scripts/bench.sh [out.json]     # default: BENCH_9.json
#   BENCHTIME=3s scripts/bench.sh   # steadier numbers
#   SWEEP=0 scripts/bench.sh        # skip the GOMAXPROCS sweep
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_9.json}
benchtime=${BENCHTIME:-1s}
maxprocs=${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}
sweep=${SWEEP:-1}

# rows converts `go test -bench` output on stdin into JSON result rows
# (no surrounding brackets), indented by $1.
rows() {
	awk -v indent="$1" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	allocs = ""
	for (i = 1; i <= NF; i++) if ($i == "allocs/op") allocs = $(i - 1)
	printf "%s%s{\"bench\": \"%s\", \"ns_per_op\": %s", sep, indent, name, $3
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
	sep = ",\n"
}
END { printf "\n" }
'
}

{
	printf '{\n  "generated": "%s",\n  "gomaxprocs": %s,\n  "results": [\n' \
		"$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$maxprocs"
	go test -run=NONE -bench='Table7_CPU|Table8_CPU|API_|Session_|Plan_|PlanBatch_|Serve_|Circuits_' \
		-benchmem -benchtime="$benchtime" . ./serve/ ./circuits/ | rows '    '
	printf '  ]'
	if [ "$sweep" = 1 ]; then
		printf ',\n  "sweep": [\n'
		sep=''
		for procs in 1 2 4 8; do
			echo "GOMAXPROCS=$procs sweep..." >&2
			printf '%s    {"gomaxprocs": %s, "results": [\n' "$sep" "$procs"
			GOMAXPROCS=$procs go test -run=NONE \
				-bench='Table8_CPU_KeySwitchThroughput|Table8_CPU_MulRelinThroughput|PlanBatch_MulRelin|Serve_RunBatchMatvec' \
				-benchmem -benchtime="$benchtime" . ./serve/ | rows '      '
			printf '    ]}'
			sep=$',\n'
		done
		printf '\n  ]'
	fi
	printf '\n}\n'
} >"$out"

echo "wrote $out"
