#!/usr/bin/env bash
# Snapshot the CPU hot-path benchmarks (Tables 7 and 8, lazy and strict,
# single-op latency plus the multi-op key-switch throughput benches at
# GOMAXPROCS), the public-API serving benches (the *Into zero-alloc
# hot path, Session.Submit batch throughput vs direct calls, and the
# compiled-plan Plan_*/PlanBatch_* benches — PlanBatch_MulRelin reports
# ns per MulRelin exactly like Session_SubmitMulRelin, so the two rows
# compare the circuit API's streaming throughput against the imperative
# baseline directly), and the wire-serving Serve_* benches (heax/serve
# loopback: Serve_RunBatchMatvec is the full framed round trip per
# input set, Serve_CompileCached the plan-cache hit, Serve_Admission
# the weighted-fair submit→dispatch→done admission path per input set),
# and the circuits-layer benches (Circuits_MatVec: 256×256 BSGS matvec
# per run, one hoisted baby batch; Circuits_ChebyshevEval: degree-3
# Paterson–Stockmeyer polynomial per run) into a JSON file so the perf
# trajectory is tracked across PRs.
#
#   scripts/bench.sh [out.json]     # default: BENCH_8.json
#   BENCHTIME=3s scripts/bench.sh   # steadier numbers
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_8.json}
benchtime=${BENCHTIME:-1s}
maxprocs=${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}

go test -run=NONE -bench='Table7_CPU|Table8_CPU|API_|Session_|Plan_|PlanBatch_|Serve_|Circuits_' -benchmem -benchtime="$benchtime" . ./serve/ ./circuits/ |
	awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v procs="$maxprocs" '
BEGIN { printf "{\n  \"generated\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"results\": [\n", date, procs }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	allocs = ""
	for (i = 1; i <= NF; i++) if ($i == "allocs/op") allocs = $(i - 1)
	printf "%s    {\"bench\": \"%s\", \"ns_per_op\": %s", sep, name, $3
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
	sep = ",\n"
}
END { printf "\n  ]\n}\n" }
' >"$out"

echo "wrote $out"
