package heax

// Round-trip and validation tests for the circuit DAG encoding: an
// exported circuit must import to one that compiles to a bit-identical
// plan, and malformed descriptions must fail with typed errors, never
// panic.

import (
	"encoding/json"
	"strings"
	"testing"
)

func exampleCircuit() *Circuit {
	c := NewCircuit()
	x := c.Input("x")
	w := c.Input("w")
	sq := c.MulRelin(x, x)
	rot := c.Add(c.Rotate(x, 1), c.Rotate(x, 2))
	mix := c.Add(c.MulPlain(w, []float64{0.5, -1, 2}), c.MulConst(rot, 0.25))
	c.Output("y", c.AddConst(c.Add(sq, mix), 1))
	c.Output("z", c.InnerSum(rot, 2))
	return c
}

func TestCircuitJSONRoundTrip(t *testing.T) {
	k := newOracleKit(t, SetA, []int{1, 2}, false)
	orig := exampleCircuit()
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var imported Circuit
	if err := json.Unmarshal(blob, &imported); err != nil {
		t.Fatal(err)
	}

	p1, err := orig.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := imported.Compile(k.params, k.evk)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Describe() != p2.Describe() {
		t.Fatalf("imported circuit compiles differently:\n--- original\n%s--- imported\n%s", p1.Describe(), p2.Describe())
	}

	in := map[string]*Ciphertext{
		"x": k.encrypt(t, []float64{0.5, -0.25, 1}),
		"w": k.encrypt(t, []float64{1, 2, 3}),
	}
	o1, err := p1.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := p2.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"y", "z"} {
		if !ctBitEqual(o1[name], o2[name]) {
			t.Fatalf("output %q differs between original and imported plan", name)
		}
	}

	// The round trip is a fixed point: export(import(export(c))) ==
	// export(c), which the serving plan cache keys on.
	blob2, err := json.Marshal(&imported)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("re-export is not byte-identical")
	}
}

func TestCircuitJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		blob string
		want string
	}{
		{"bad version", `{"version":7,"nodes":[],"outputs":[]}`, "unsupported version"},
		{"unknown op", `{"version":1,"nodes":[{"op":"Bootstrap"}],"outputs":[]}`, "unknown op"},
		{"forward reference", `{"version":1,"nodes":[{"op":"Rotate","args":[1],"step":1},{"op":"Input","name":"x"}],"outputs":[]}`, "earlier nodes"},
		{"self reference", `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"Add","args":[1,0]}],"outputs":[]}`, "earlier nodes"},
		{"wrong arity", `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"Add","args":[0]}],"outputs":[]}`, "operands"},
		{"empty input name", `{"version":1,"nodes":[{"op":"Input"}],"outputs":[]}`, "empty name"},
		{"duplicate input", `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"Input","name":"x"}],"outputs":[]}`, "duplicate input"},
		{"missing payload", `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"MulPlain","args":[0]}],"outputs":[]}`, "no plaintext payload"},
		{"double payload", `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"MulPlain","args":[0],"values":[1],"scalar":2}],"outputs":[]}`, "both a scalar and a vector"},
		{"bad width", `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"InnerSum","args":[0],"n2":3}],"outputs":[]}`, "power of two"},
		{"stray name", `{"version":1,"nodes":[{"op":"Input","name":"x"},{"op":"Rotate","args":[0],"step":1,"name":"x"}],"outputs":[]}`, "must not carry"},
		{"bad output node", `{"version":1,"nodes":[{"op":"Input","name":"x"}],"outputs":[{"name":"y","node":3}]}`, "references node"},
		{"duplicate output", `{"version":1,"nodes":[{"op":"Input","name":"x"}],"outputs":[{"name":"y","node":0},{"name":"y","node":0}]}`, "duplicate output"},
		{"empty output name", `{"version":1,"nodes":[{"op":"Input","name":"x"}],"outputs":[{"name":"","node":0}]}`, "empty name"},
	}
	for _, tc := range cases {
		var c Circuit
		err := json.Unmarshal([]byte(tc.blob), &c)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestCircuitJSONFailedBuilderRefuses: a circuit whose builder chain
// failed exports that error instead of a half-built graph.
func TestCircuitJSONFailedBuilderRefuses(t *testing.T) {
	c := NewCircuit()
	other := NewCircuit()
	c.Add(c.Input("x"), other.Input("y")) // cross-circuit misuse
	if _, err := json.Marshal(c); err == nil {
		t.Fatal("marshaling a failed builder must surface its error")
	}
}
