package heax_test

// Serialization through the public types: the wire format a client and
// a HEAX-accelerated server exchange. Round trips must be bit-exact and
// evaluate identically; corrupted blobs must fail with ErrCorrupt.

import (
	"bytes"
	"errors"
	"testing"

	"heax"
)

func TestPublicSerializationRoundTrip(t *testing.T) {
	k := newAPIKit(t)

	// Params round trip: the receiver reconstructs an identical context.
	var buf bytes.Buffer
	if err := heax.WriteParams(&buf, k.params); err != nil {
		t.Fatal(err)
	}
	params2, err := heax.ReadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if params2.N != k.params.N || params2.P != k.params.P || len(params2.Q) != len(k.params.Q) {
		t.Fatal("params round trip changed the instantiation")
	}
	for i := range params2.Q {
		if params2.Q[i] != k.params.Q[i] {
			t.Fatalf("prime %d changed across round trip", i)
		}
	}

	// Key round trips.
	buf.Reset()
	if err := heax.WriteSecretKey(&buf, k.sk); err != nil {
		t.Fatal(err)
	}
	sk2, err := heax.ReadSecretKey(&buf, params2)
	if err != nil {
		t.Fatal(err)
	}
	if !sk2.Value.Equal(k.sk.Value) {
		t.Fatal("secret key round trip not bit-exact")
	}

	buf.Reset()
	if err := heax.WriteRelinearizationKey(&buf, k.evk.Relin); err != nil {
		t.Fatal(err)
	}
	rlk2, err := heax.ReadRelinearizationKey(&buf, params2)
	if err != nil {
		t.Fatal(err)
	}

	buf.Reset()
	if err := heax.WriteGaloisKey(&buf, k.evk.Galois.Rotations[1]); err != nil {
		t.Fatal(err)
	}
	gk2, err := heax.ReadGaloisKey(&buf, params2)
	if err != nil {
		t.Fatal(err)
	}

	// Ciphertext round trip, then *evaluate* on the deserialized world:
	// the reconstructed keys and ciphertexts must produce bit-identical
	// results to the originals.
	x := k.encrypt(t, []float64{1.25, -0.5, 3.0})
	y := k.encrypt(t, []float64{0.75, 2.0, -1.5})
	buf.Reset()
	if err := heax.WriteCiphertext(&buf, x); err != nil {
		t.Fatal(err)
	}
	x2, err := heax.ReadCiphertext(&buf, params2)
	if err != nil {
		t.Fatal(err)
	}
	if !ctEqual(x, x2) || x2.Scale != x.Scale {
		t.Fatal("ciphertext round trip not bit-exact")
	}

	evk2 := &heax.EvaluationKeySet{
		Relin:  rlk2,
		Galois: &heax.GaloisKeySet{Rotations: map[int]*heax.GaloisKey{1: gk2}},
	}
	eval2 := heax.NewEvaluator(params2, evk2)

	want, err := k.eval.MulRelin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eval2.MulRelin(x2, y)
	if err != nil {
		t.Fatal(err)
	}
	if !ctEqual(want, got) {
		t.Fatal("MulRelin through deserialized keys diverged")
	}

	wantRot, err := k.eval.RotateLeft(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotRot, err := eval2.RotateLeft(x2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ctEqual(wantRot, gotRot) {
		t.Fatal("rotation through deserialized Galois key diverged")
	}
}

func TestPublicSerializationCorruption(t *testing.T) {
	k := newAPIKit(t)
	x := k.encrypt(t, []float64{1, 2, 3})

	var buf bytes.Buffer
	if err := heax.WriteCiphertext(&buf, x); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := heax.ReadCiphertext(bytes.NewReader(bad), k.params); !errors.Is(err, heax.ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}

	// Out-of-range residue: all primes are < 2^52, so an all-ones word
	// inside the coefficient payload must be rejected by validation.
	bad = append([]byte(nil), blob...)
	// header (12) + scale (8) + level (4) + ncomp (4) + rows (4) + n (4)
	// puts the first residue word at offset 36.
	for i := 36; i < 44; i++ {
		bad[i] = 0xff
	}
	if _, err := heax.ReadCiphertext(bytes.NewReader(bad), k.params); !errors.Is(err, heax.ErrCorrupt) {
		t.Fatalf("oversized residue: got %v, want ErrCorrupt", err)
	}

	// Truncation fails, even if not with ErrCorrupt (io errors surface
	// as-is).
	if _, err := heax.ReadCiphertext(bytes.NewReader(blob[:len(blob)/2]), k.params); err == nil {
		t.Fatal("truncated blob decoded successfully")
	}

	// Wrong object kind: a secret key blob read as a ciphertext.
	buf.Reset()
	if err := heax.WriteSecretKey(&buf, k.sk); err != nil {
		t.Fatal(err)
	}
	if _, err := heax.ReadCiphertext(&buf, k.params); !errors.Is(err, heax.ErrCorrupt) {
		t.Fatalf("wrong kind: got %v, want ErrCorrupt", err)
	}
}
